"""Tests for repro.model (Community, Instance)."""

import numpy as np
import pytest

from repro.model.community import Community
from repro.model.instance import Instance


class TestCommunity:
    def test_members_sorted_and_typed(self):
        c = Community(members=np.asarray([3, 1, 2]), diameter=0)
        assert c.members.tolist() == [1, 2, 3]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Community(members=np.asarray([], dtype=int), diameter=0)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Community(members=np.asarray([1, 1]), diameter=0)

    def test_rejects_negative_diameter(self):
        with pytest.raises(ValueError):
            Community(members=np.asarray([0]), diameter=-1)

    def test_size_and_alpha(self):
        c = Community(members=np.arange(25), diameter=2)
        assert c.size == 25
        assert c.alpha(100) == 0.25

    def test_alpha_rejects_bad_n(self):
        c = Community(members=np.asarray([0]), diameter=0)
        with pytest.raises(ValueError):
            c.alpha(0)

    def test_contains(self):
        c = Community(members=np.asarray([2, 5, 9]), diameter=0)
        assert c.contains(5)
        assert not c.contains(3)
        assert not c.contains(100)

    def test_equality_and_hash(self):
        a = Community(members=np.asarray([1, 2]), diameter=3, label="x")
        b = Community(members=np.asarray([2, 1]), diameter=3, label="x")
        c = Community(members=np.asarray([1, 2]), diameter=4, label="x")
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_center_stored_as_int8(self):
        c = Community(members=np.asarray([0]), diameter=0, center=np.asarray([0.0, 1.0]))
        assert c.center.dtype == np.int8


class TestInstance:
    def _prefs(self):
        return np.asarray([[0, 1, 0], [0, 1, 0], [1, 0, 1], [1, 1, 1]], dtype=np.int8)

    def test_shape_properties(self):
        inst = Instance(prefs=self._prefs())
        assert inst.n_players == 4
        assert inst.n_objects == 3
        assert inst.shape == (4, 3)

    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError):
            Instance(prefs=np.asarray([[2, 0]]))

    def test_rejects_out_of_range_community(self):
        comm = Community(members=np.asarray([10]), diameter=0)
        with pytest.raises(ValueError):
            Instance(prefs=self._prefs(), communities=[comm])

    def test_main_community_is_largest(self):
        c1 = Community(members=np.asarray([0]), diameter=0, label="a")
        c2 = Community(members=np.asarray([1, 2]), diameter=3, label="b")
        inst = Instance(prefs=self._prefs(), communities=[c1, c2])
        assert inst.main_community().label == "b"

    def test_main_community_requires_one(self):
        inst = Instance(prefs=self._prefs())
        with pytest.raises(ValueError):
            inst.main_community()

    def test_community_alpha(self):
        c = Community(members=np.asarray([0, 1]), diameter=0)
        inst = Instance(prefs=self._prefs(), communities=[c])
        assert inst.community_alpha() == 0.5

    def test_measured_diameter(self):
        c = Community(members=np.asarray([0, 1]), diameter=0)
        inst = Instance(prefs=self._prefs(), communities=[c])
        assert inst.measured_diameter(c) == 0
        c2 = Community(members=np.asarray([0, 2]), diameter=3)
        inst2 = Instance(prefs=self._prefs(), communities=[c2])
        assert inst2.measured_diameter(c2) == 3

    def test_restrict_objects(self):
        c = Community(members=np.asarray([0, 2]), diameter=3)
        inst = Instance(prefs=self._prefs(), communities=[c])
        sub = inst.restrict_objects(np.asarray([0, 2]))
        assert sub.shape == (4, 2)
        assert sub.communities[0].diameter == 2

    def test_restrict_objects_keeps_center_slice(self):
        c = Community(members=np.asarray([0]), diameter=0, center=np.asarray([0, 1, 0]))
        inst = Instance(prefs=self._prefs(), communities=[c])
        sub = inst.restrict_objects(np.asarray([1]))
        assert sub.communities[0].center.tolist() == [1]
