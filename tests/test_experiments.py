"""Tests for the experiment harness and the cheap experiments.

The heavy experiments (E1, E4, E6, E8–E12) are exercised by the
benchmark suite; here we test the harness machinery and run the cheap
ones end-to-end.
"""

import pytest

from repro.experiments import REGISTRY, run_experiment
from repro.experiments.harness import ExperimentResult, register
from repro.utils.tables import Table


class TestHarness:
    def test_all_experiments_registered(self):
        core = {f"E{i}" for i in range(1, 13)}
        extensions = {"X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8"}
        assert set(REGISTRY) == core | extensions

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register("E1")(lambda **kw: None)

    def test_render_contains_checks(self):
        t = Table("t", ["a"])
        t.add(a=1)
        res = ExperimentResult(
            experiment="EX", claim="c", table=t, passed=False,
            checks={"good": True, "bad": False}, notes="note",
        )
        out = res.render()
        assert "check good: PASS" in out
        assert "check bad: FAIL" in out
        assert "overall: FAIL" in out
        assert "note" in out


class TestCheapExperiments:
    def test_e2_select(self):
        res = run_experiment("E2", quick=True, rng=3)
        assert res.passed
        assert len(res.table.rows) == 9

    def test_e5_coalesce(self):
        res = run_experiment("E5", quick=True, rng=3)
        assert res.passed

    def test_e7_rselect(self):
        res = run_experiment("E7", quick=True, rng=3)
        assert res.passed

    def test_e3_lemma41_small(self):
        res = run_experiment("E3", quick=True, rng=3)
        assert res.passed
        probs = res.table.column("success_prob")
        assert all(0 <= p <= 1 for p in probs)

    def test_results_have_tables_and_claims(self):
        res = run_experiment("E2", quick=True, rng=0)
        assert res.claim
        assert res.table.rows
        assert res.experiment == "E2"

    def test_x2_dynamic(self):
        res = run_experiment("X2", quick=True, rng=3)
        assert res.passed

    def test_x4_engine(self):
        res = run_experiment("X4", quick=True, rng=3)
        assert res.passed
        assert all(r["bitwise_equal"] for r in res.table.rows)

    def test_x5_confidence(self):
        res = run_experiment("X5", quick=True, rng=3)
        assert res.passed
