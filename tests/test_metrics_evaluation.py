"""Tests for discrepancy / stretch / evaluation reports (Section 1.1)."""

import numpy as np
import pytest

from repro.metrics.evaluation import EvaluationReport, discrepancy, errors, evaluate, stretch
from repro.utils.validation import WILDCARD


@pytest.fixture
def truth():
    return np.asarray([[0, 0, 0, 0], [1, 1, 1, 1], [0, 1, 0, 1]], dtype=np.int8)


class TestErrors:
    def test_exact(self, truth):
        assert errors(truth.copy(), truth).tolist() == [0, 0, 0]

    def test_counts_flips(self, truth):
        out = truth.copy()
        out[0, 0] ^= 1
        out[1] ^= 1
        assert errors(out, truth).tolist() == [1, 4, 0]

    def test_wildcard_scored_as_zero(self, truth):
        out = truth.copy()
        out[0, :2] = WILDCARD  # truth row0 is zeros -> wildcards are free
        out[1, 0] = WILDCARD  # truth row1 is ones -> wildcard-as-0 is an error
        e = errors(out, truth)
        assert e.tolist() == [0, 1, 0]

    def test_wildcard_pessimistic_mode(self, truth):
        out = truth.copy()
        out[0, :2] = WILDCARD
        e = errors(out, truth, wildcard_as_zero=False)
        assert e[0] == 2

    def test_shape_mismatch(self, truth):
        with pytest.raises(ValueError):
            errors(truth[:2], truth)


class TestDiscrepancy:
    def test_over_all(self, truth):
        out = truth.copy()
        out[2] ^= 1
        assert discrepancy(out, truth) == 4

    def test_over_members(self, truth):
        out = truth.copy()
        out[2] ^= 1
        assert discrepancy(out, truth, members=[0, 1]) == 0

    def test_empty_members_rejected(self, truth):
        with pytest.raises(ValueError):
            discrepancy(truth, truth, members=[])


class TestStretch:
    def test_zero_diameter_convention(self, truth):
        same = np.tile(truth[0], (3, 1))
        assert stretch(same.copy(), same, diam=0) == 0.0

    def test_uses_given_diameter(self, truth):
        out = truth.copy()
        out[0, 0] ^= 1
        assert stretch(out, truth, diam=2) == 0.5

    def test_computes_diameter(self):
        truth = np.asarray([[0, 0], [0, 1]], dtype=np.int8)  # diameter 1
        out = np.asarray([[1, 1], [0, 1]], dtype=np.int8)  # worst error 2
        assert stretch(out, truth) == 2.0


class TestEvaluate:
    def test_report_fields(self, truth):
        out = truth.copy()
        out[0, 0] ^= 1
        rep = evaluate(out, truth, members=[0, 1], diam=4)
        assert isinstance(rep, EvaluationReport)
        assert rep.discrepancy == 1
        assert rep.diameter == 4
        assert rep.stretch == 0.25
        assert rep.n_members == 2
        assert rep.mean_error == 0.5
        assert rep.max_error == 1

    def test_default_members_all(self, truth):
        rep = evaluate(truth.copy(), truth)
        assert rep.n_members == 3
        assert rep.discrepancy == 0

    def test_median(self, truth):
        out = truth.copy()
        out[0] ^= 1
        rep = evaluate(out, truth)
        assert rep.median_error == 0.0

    def test_empty_members_rejected(self, truth):
        with pytest.raises(ValueError):
            evaluate(truth, truth, members=np.asarray([], dtype=int))

    def test_str_contains_stats(self, truth):
        rep = evaluate(truth.copy(), truth)
        s = str(rep)
        assert "Δ=0" in s
