"""Tests for bit-packed matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.bitpack import BitMatrix
from repro.metrics.hamming import diameter, hamming_to_each, pairwise_hamming

binary_matrix = arrays(
    np.int8,
    st.tuples(st.integers(1, 12), st.integers(1, 40)),
    elements=st.integers(0, 1),
)


class TestRoundTrip:
    @given(binary_matrix)
    @settings(max_examples=60)
    def test_unpack_inverts_pack(self, m):
        assert np.array_equal(BitMatrix(m).unpack(), m)

    def test_row_access(self):
        m = np.asarray([[0, 1, 1], [1, 0, 0]], dtype=np.int8)
        bm = BitMatrix(m)
        assert bm.row(1).tolist() == [1, 0, 0]

    def test_row_out_of_range(self):
        bm = BitMatrix(np.zeros((2, 3), dtype=np.int8))
        with pytest.raises(IndexError):
            bm.row(5)

    def test_shape_and_compression(self):
        bm = BitMatrix(np.zeros((10, 80), dtype=np.int8))
        assert bm.shape == (10, 80)
        assert bm.nbytes == 100  # 80 bits -> 10 bytes per row

    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError):
            BitMatrix(np.asarray([[2]]))

    def test_equality(self):
        m = np.asarray([[0, 1]], dtype=np.int8)
        assert BitMatrix(m) == BitMatrix(m.copy())
        assert BitMatrix(m) != BitMatrix(1 - m)


class TestHammingOps:
    @given(binary_matrix)
    @settings(max_examples=40)
    def test_hamming_to_row_matches_dense(self, m):
        bm = BitMatrix(m)
        for i in range(m.shape[0]):
            assert np.array_equal(bm.hamming_to_row(i), hamming_to_each(m[i], m))

    @given(binary_matrix)
    @settings(max_examples=40)
    def test_pairwise_matches_dense(self, m):
        assert np.array_equal(BitMatrix(m).pairwise_hamming(), pairwise_hamming(m))

    @given(binary_matrix)
    @settings(max_examples=40)
    def test_diameter_matches_dense(self, m):
        assert BitMatrix(m).diameter() == diameter(m)

    def test_hamming_to_vector(self):
        m = np.asarray([[0, 0, 0], [1, 1, 1]], dtype=np.int8)
        bm = BitMatrix(m)
        assert bm.hamming_to_vector(np.asarray([0, 1, 0])).tolist() == [1, 2]

    def test_hamming_to_vector_shape_check(self):
        bm = BitMatrix(np.zeros((2, 3), dtype=np.int8))
        with pytest.raises(ValueError):
            bm.hamming_to_vector(np.zeros(4))

    def test_hamming_to_row_range_check(self):
        bm = BitMatrix(np.zeros((2, 3), dtype=np.int8))
        with pytest.raises(IndexError):
            bm.hamming_to_row(-1)

    def test_single_row_diameter(self):
        assert BitMatrix(np.ones((1, 9), dtype=np.int8)).diameter() == 0

    def test_non_multiple_of_eight_width(self):
        # padding bits must not leak into distances
        rng = np.random.default_rng(0)
        m = rng.integers(0, 2, (6, 13), dtype=np.int8)
        assert np.array_equal(BitMatrix(m).pairwise_hamming(), pairwise_hamming(m))
