"""Tests for the bit-packed substrate (matrices, kernels, helpers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.bitpack import (
    BitMatrix,
    differing_columns,
    extract_bits,
    hamming_to_packed,
    lut_popcount,
    pack_rows,
    pack_vector,
    packed_width,
    popcount_sum,
    unpack_rows,
    unpack_vector,
)
from repro.metrics.hamming import diameter, hamming_to_each, pairwise_hamming

binary_matrix = arrays(
    np.int8,
    st.tuples(st.integers(1, 12), st.integers(1, 40)),
    elements=st.integers(0, 1),
)


class TestRoundTrip:
    @given(binary_matrix)
    @settings(max_examples=60)
    def test_unpack_inverts_pack(self, m):
        assert np.array_equal(BitMatrix(m).unpack(), m)

    def test_row_access(self):
        m = np.asarray([[0, 1, 1], [1, 0, 0]], dtype=np.int8)
        bm = BitMatrix(m)
        assert bm.row(1).tolist() == [1, 0, 0]

    def test_row_out_of_range(self):
        bm = BitMatrix(np.zeros((2, 3), dtype=np.int8))
        with pytest.raises(IndexError):
            bm.row(5)

    def test_shape_and_compression(self):
        bm = BitMatrix(np.zeros((10, 80), dtype=np.int8))
        assert bm.shape == (10, 80)
        assert bm.nbytes == 100  # 80 bits -> 10 bytes per row

    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError):
            BitMatrix(np.asarray([[2]]))

    def test_equality(self):
        m = np.asarray([[0, 1]], dtype=np.int8)
        assert BitMatrix(m) == BitMatrix(m.copy())
        assert BitMatrix(m) != BitMatrix(1 - m)


class TestHammingOps:
    @given(binary_matrix)
    @settings(max_examples=40)
    def test_hamming_to_row_matches_dense(self, m):
        bm = BitMatrix(m)
        for i in range(m.shape[0]):
            assert np.array_equal(bm.hamming_to_row(i), hamming_to_each(m[i], m))

    @given(binary_matrix)
    @settings(max_examples=40)
    def test_pairwise_matches_dense(self, m):
        assert np.array_equal(BitMatrix(m).pairwise_hamming(), pairwise_hamming(m))

    @given(binary_matrix)
    @settings(max_examples=40)
    def test_diameter_matches_dense(self, m):
        assert BitMatrix(m).diameter() == diameter(m)

    def test_hamming_to_vector(self):
        m = np.asarray([[0, 0, 0], [1, 1, 1]], dtype=np.int8)
        bm = BitMatrix(m)
        assert bm.hamming_to_vector(np.asarray([0, 1, 0])).tolist() == [1, 2]

    def test_hamming_to_vector_shape_check(self):
        bm = BitMatrix(np.zeros((2, 3), dtype=np.int8))
        with pytest.raises(ValueError):
            bm.hamming_to_vector(np.zeros(4))

    def test_hamming_to_row_range_check(self):
        bm = BitMatrix(np.zeros((2, 3), dtype=np.int8))
        with pytest.raises(IndexError):
            bm.hamming_to_row(-1)

    def test_single_row_diameter(self):
        assert BitMatrix(np.ones((1, 9), dtype=np.int8)).diameter() == 0

    def test_non_multiple_of_eight_width(self):
        # padding bits must not leak into distances
        rng = np.random.default_rng(0)
        m = rng.integers(0, 2, (6, 13), dtype=np.int8)
        assert np.array_equal(BitMatrix(m).pairwise_hamming(), pairwise_hamming(m))


class TestEdgeShapes:
    """Degenerate shapes every packed kernel must survive."""

    def test_empty_matrix(self):
        bm = BitMatrix(np.empty((0, 5), dtype=np.int8))
        assert bm.shape == (0, 5)
        assert bm.unpack().shape == (0, 5)
        assert bm.diameter() == 0
        assert bm.pairwise_hamming().shape == (0, 0)

    def test_single_row(self):
        m = np.asarray([[1, 0, 1, 1, 0, 0, 1, 0, 1]], dtype=np.int8)
        bm = BitMatrix(m)
        assert bm.diameter() == 0
        assert np.array_equal(bm.unpack(), m)
        assert bm.hamming_to_row(0).tolist() == [0]

    @pytest.mark.parametrize("fill", [0, 1])
    def test_all_constant(self, fill):
        m = np.full((7, 19), fill, dtype=np.int8)
        bm = BitMatrix(m)
        assert bm.diameter() == 0
        assert np.array_equal(bm.unpack(), m)
        assert (bm.pairwise_hamming() == 0).all()

    @pytest.mark.parametrize("width", [1, 7, 8, 9, 15, 16, 17])
    def test_tail_widths_round_trip(self, width):
        rng = np.random.default_rng(width)
        m = rng.integers(0, 2, (5, width), dtype=np.int8)
        assert np.array_equal(unpack_rows(pack_rows(m), width), m)

    def test_pack_unpack_pack_is_identity(self):
        rng = np.random.default_rng(2)
        m = rng.integers(0, 2, (9, 21), dtype=np.int8)
        packed = pack_rows(m)
        assert np.array_equal(pack_rows(unpack_rows(packed, 21)), packed)

    def test_from_packed_rezeros_padding_garbage(self):
        m = np.asarray([[1, 0, 1], [0, 1, 1]], dtype=np.int8)
        dirty = pack_rows(m) | np.uint8(0x1F)  # trash the 5 padding bits
        bm = BitMatrix.from_packed(dirty, 3)
        assert bm == BitMatrix(m)
        assert np.array_equal(bm.unpack(), m)
        assert bm.diameter() == BitMatrix(m).diameter()


class TestHelpers:
    def test_packed_width(self):
        assert [packed_width(m) for m in (0, 1, 7, 8, 9, 16)] == [0, 1, 1, 1, 2, 2]

    def test_pack_rows_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            pack_rows(np.zeros(4, dtype=np.int8))

    def test_pack_vector_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            pack_vector(np.zeros((2, 2), dtype=np.int8))

    def test_unpack_width_mismatch(self):
        with pytest.raises(ValueError, match="packed width"):
            unpack_rows(np.zeros((2, 3), dtype=np.uint8), 40)
        with pytest.raises(ValueError, match="packed width"):
            unpack_vector(np.zeros(3, dtype=np.uint8), 40)

    def test_vector_round_trip(self):
        v = np.asarray([1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 1], dtype=np.int8)
        assert np.array_equal(unpack_vector(pack_vector(v), v.size), v)

    @given(binary_matrix)
    @settings(max_examples=40)
    def test_extract_bits_matches_fancy_index(self, m):
        packed = pack_rows(m)
        rng = np.random.default_rng(0)
        rows = rng.integers(0, m.shape[0], size=17)
        cols = rng.integers(0, m.shape[1], size=17)
        got = extract_bits(packed, rows, cols)
        assert got.dtype == np.int8
        assert np.array_equal(got, m[rows, cols])

    def test_extract_bits_scalar(self):
        m = np.asarray([[0, 1, 0], [1, 0, 1]], dtype=np.int8)
        assert int(extract_bits(pack_rows(m), np.asarray(1), np.asarray(2))) == 1

    @given(binary_matrix)
    @settings(max_examples=40)
    def test_differing_columns_matches_bruteforce(self, m):
        expected = np.flatnonzero((m != m[0]).any(axis=0))
        got = differing_columns(pack_rows(m), m.shape[1])
        assert np.array_equal(got, expected)

    def test_differing_columns_single_row(self):
        m = np.asarray([[1, 0, 1]], dtype=np.int8)
        assert differing_columns(pack_rows(m), 3).size == 0

    @given(binary_matrix)
    @settings(max_examples=40)
    def test_hamming_to_packed_matches_dense(self, m):
        got = hamming_to_packed(pack_rows(m), pack_vector(m[-1]))
        assert np.array_equal(got, hamming_to_each(m[-1], m))


class TestPopcountSum:
    """The two popcount engines agree bit-for-bit."""

    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.uint64])
    @pytest.mark.parametrize("width", [1, 2, 3, 8, 9])
    def test_lut_matches_native(self, dtype, width):
        rng = np.random.default_rng(int(np.dtype(dtype).itemsize) * 100 + width)
        words = rng.integers(
            0, np.iinfo(dtype).max, size=(6, width), dtype=dtype, endpoint=True
        )
        native = popcount_sum(words)
        with lut_popcount():
            assert np.array_equal(popcount_sum(words), native)

    def test_matches_bruteforce(self):
        words = np.asarray([[0xFF, 0x00], [0x0F, 0x81]], dtype=np.uint8)
        assert popcount_sum(words).tolist() == [8, 6]
        with lut_popcount():
            assert popcount_sum(words).tolist() == [8, 6]

    @given(binary_matrix)
    @settings(max_examples=30)
    def test_packed_hamming_agrees_under_lut(self, m):
        expected = hamming_to_each(m[0], m)
        with lut_popcount():
            bm = BitMatrix(m)
            assert np.array_equal(bm.hamming_to_row(0), expected)
            assert bm.diameter() == diameter(m)
