"""Observation-equivalence of the batched probe drivers.

The contract the tentpole rests on: population-batching probes through
``ProbeOracle.probe_many`` is a *scheduling* change, not an algorithmic
one.  Within a lockstep round every player's probes are independent, so
batching may interleave players differently but must preserve, exactly,

* each player's outputs,
* each player's charged-probe count, and
* each player's own probe sequence (the objects it probed, in order).

These tests run every algorithm branch twice — batched (the default)
and under :func:`repro.core.batching.sequential_probes` (the per-player
reference loops) — and assert all three invariants, then pin both modes
to the golden digests captured from the pre-batching seed code (the
same constants ``tests/test_obs.py`` guards), so neither mode can drift
from the sequential seed semantics without failing loudly.
"""

import hashlib

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.billboard.trace import ProbeTrace
from repro.core.batching import batching_enabled, sequential_probes
from repro.core.main import find_preferences, find_preferences_unknown_d
from repro.workloads.planted import planted_instance

N = M = 128
ALPHA = 0.5
INSTANCE_SEED = 13
ALGO_SEED = 17

#: sha256(outputs || per-player counts) and total probes, captured from
#: the pre-batching seed code (commit b213d42) — duplicated from
#: tests/test_obs.py on purpose: this file guards batching, that one
#: guards telemetry, and either regression should fail its own guard.
GOLDEN = {
    "zero_radius": ("9d2b88ed3cc23bca", 2048),
    "small_radius": ("c7ca0a9af69f160b", 65536),
    "large_radius": ("54bc2871ce5b84ea", 14112),
    "unknown_d": ("23dbf4633d0f463f", 166391),
}

_CONFIGS = {
    "zero_radius": (0, False),
    "small_radius": (2, False),
    "large_radius": (40, False),
    "unknown_d": (2, True),
}


def _digest(*arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()[:16]


def _run_config(label: str):
    D, unknown = _CONFIGS[label]
    inst = planted_instance(N, M, ALPHA, D, rng=INSTANCE_SEED)
    oracle = ProbeOracle(inst)
    trace = ProbeTrace()
    oracle.attach_trace(trace)
    if unknown:
        result = find_preferences_unknown_d(oracle, ALPHA, rng=ALGO_SEED, d_max=4)
    else:
        result = find_preferences(oracle, ALPHA, D, rng=ALGO_SEED)
    return result, oracle, trace


class TestBatchedMatchesSequential:
    """Batched and sequential drivers are observation-equivalent."""

    @pytest.mark.parametrize("label", sorted(_CONFIGS))
    def test_outputs_counts_and_per_player_sequences(self, label):
        assert batching_enabled()
        batched_result, batched_oracle, batched_trace = _run_config(label)
        with sequential_probes():
            assert not batching_enabled()
            seq_result, seq_oracle, seq_trace = _run_config(label)
        assert batching_enabled()

        assert np.array_equal(batched_result.outputs, seq_result.outputs)
        assert np.array_equal(
            batched_oracle.stats().per_player, seq_oracle.stats().per_player
        )
        # Strongest per-player invariant: the exact object sequence each
        # player probed.  Batching may interleave players differently
        # (the traces as wholes differ) but never reorders, adds, or
        # drops any single player's probes.
        for player in range(N):
            assert np.array_equal(
                batched_trace.player_sequence(player),
                seq_trace.player_sequence(player),
            ), f"{label}: probe sequence diverged for player {player}"

    @pytest.mark.parametrize("mode", ["batched", "sequential"])
    @pytest.mark.parametrize("label", sorted(GOLDEN))
    def test_both_modes_match_seed_golden(self, label, mode):
        if mode == "sequential":
            with sequential_probes():
                result, oracle, _ = _run_config(label)
        else:
            result, oracle, _ = _run_config(label)
        digest, total = GOLDEN[label]
        assert oracle.stats().total == total
        assert _digest(result.outputs, oracle.stats().per_player) == digest


class TestToggleScoping:
    def test_sequential_probes_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with sequential_probes():
                raise RuntimeError("boom")
        assert batching_enabled()

    def test_toggle_nests(self):
        from repro.core.batching import batched_probes

        with sequential_probes():
            with batched_probes():
                assert batching_enabled()
            assert not batching_enabled()
        assert batching_enabled()
