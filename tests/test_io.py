"""Tests for npz archiving of instances and run results."""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.main import find_preferences
from repro.io import load_instance, load_run, save_instance, save_run
from repro.workloads.planted import planted_instance


class TestInstanceRoundTrip:
    def test_prefs_exact(self, tmp_path):
        inst = planted_instance(32, 40, 0.5, 2, rng=0)
        p = save_instance(tmp_path / "inst.npz", inst)
        loaded = load_instance(p)
        assert np.array_equal(loaded.prefs, inst.prefs)
        assert loaded.name == inst.name

    def test_communities_roundtrip(self, tmp_path):
        inst = planted_instance(32, 40, 0.25, 4, n_communities=2, rng=1)
        loaded = load_instance(save_instance(tmp_path / "i.npz", inst))
        assert len(loaded.communities) == 2
        for a, b in zip(inst.communities, loaded.communities):
            assert np.array_equal(a.members, b.members)
            assert a.diameter == b.diameter
            assert a.label == b.label
            assert np.array_equal(a.center, b.center)

    def test_instance_without_communities(self, tmp_path):
        from repro.model.instance import Instance

        inst = Instance(prefs=np.zeros((3, 3), dtype=np.int8), name="bare")
        loaded = load_instance(save_instance(tmp_path / "bare.npz", inst))
        assert loaded.communities == []

    def test_suffix_added(self, tmp_path):
        inst = planted_instance(8, 8, 0.5, 0, rng=2)
        p = save_instance(tmp_path / "noext", inst)
        assert p.suffix == ".npz"
        assert load_instance(p).shape == (8, 8)

    def test_kind_mismatch_rejected(self, tmp_path):
        inst = planted_instance(8, 8, 0.5, 0, rng=3)
        oracle = ProbeOracle(inst)
        run = find_preferences(oracle, 0.5, 0, rng=4)
        p = save_run(tmp_path / "run.npz", run)
        with pytest.raises(ValueError):
            load_instance(p)


class TestRunRoundTrip:
    def _run(self):
        inst = planted_instance(32, 32, 0.5, 0, rng=5)
        oracle = ProbeOracle(inst)
        return find_preferences(oracle, 0.5, 0, rng=6)

    def test_outputs_and_stats(self, tmp_path):
        run = self._run()
        loaded = load_run(save_run(tmp_path / "r.npz", run))
        assert np.array_equal(loaded.outputs, run.outputs)
        assert np.array_equal(loaded.stats.per_player, run.stats.per_player)
        assert loaded.algorithm == run.algorithm
        assert loaded.rounds == run.rounds

    def test_meta_scalars_kept(self, tmp_path):
        run = self._run()
        run.meta["note"] = "hello"  # repro: noqa[RPL003] — io robustness: off-vocabulary key
        run.meta["unpicklable"] = object()  # silently dropped  # repro: noqa[RPL003]
        loaded = load_run(save_run(tmp_path / "r.npz", run))
        assert loaded.meta["note"] == "hello"
        assert "unpicklable" not in loaded.meta
        assert loaded.meta["alpha"] == 0.5

    def test_kind_mismatch_rejected(self, tmp_path):
        inst = planted_instance(8, 8, 0.5, 0, rng=7)
        p = save_instance(tmp_path / "i.npz", inst)
        with pytest.raises(ValueError):
            load_run(p)

    def test_wildcard_outputs_roundtrip(self, tmp_path):
        # Large Radius outputs may contain -1 wildcards; they must
        # survive the archive byte-exactly.
        from repro.core.large_radius import large_radius

        inst = planted_instance(48, 48, 0.5, 16, rng=8)
        oracle = ProbeOracle(inst)
        from repro.billboard.accounting import ProbeStats
        from repro.core.result import RunResult

        out = large_radius(oracle, 0.5, 16, rng=9)
        run = RunResult(outputs=out, stats=oracle.stats(), algorithm="large_radius")
        loaded = load_run(save_run(tmp_path / "lr.npz", run))
        assert np.array_equal(loaded.outputs, out)
        assert loaded.outputs.dtype == out.dtype
