"""Tests for npz archiving of instances, run results, and probe stats."""

import json

import numpy as np
import pytest

from repro.billboard.accounting import ProbeStats
from repro.billboard.oracle import ProbeOracle
from repro.core.main import find_preferences
from repro.io import (
    FORMAT_VERSION,
    SUPPORTED_VERSIONS,
    load_instance,
    load_probe_stats,
    load_run,
    save_instance,
    save_probe_stats,
    save_run,
)
from repro.workloads.planted import planted_instance


def rewrite_meta(path, **updates):
    """Patch (or with ``key=None`` drop) entries of an archive's metadata."""
    with np.load(path) as data:
        arrays = {name: data[name] for name in data.files}
    meta = json.loads(bytes(arrays["meta_json"]).decode())
    for key, value in updates.items():
        if value is None:
            meta.pop(key, None)
        else:
            meta[key] = value
    arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    return path


class TestInstanceRoundTrip:
    def test_prefs_exact(self, tmp_path):
        inst = planted_instance(32, 40, 0.5, 2, rng=0)
        p = save_instance(tmp_path / "inst.npz", inst)
        loaded = load_instance(p)
        assert np.array_equal(loaded.prefs, inst.prefs)
        assert loaded.name == inst.name

    def test_communities_roundtrip(self, tmp_path):
        inst = planted_instance(32, 40, 0.25, 4, n_communities=2, rng=1)
        loaded = load_instance(save_instance(tmp_path / "i.npz", inst))
        assert len(loaded.communities) == 2
        for a, b in zip(inst.communities, loaded.communities):
            assert np.array_equal(a.members, b.members)
            assert a.diameter == b.diameter
            assert a.label == b.label
            assert np.array_equal(a.center, b.center)

    def test_instance_without_communities(self, tmp_path):
        from repro.model.instance import Instance

        inst = Instance(prefs=np.zeros((3, 3), dtype=np.int8), name="bare")
        loaded = load_instance(save_instance(tmp_path / "bare.npz", inst))
        assert loaded.communities == []

    def test_suffix_added(self, tmp_path):
        inst = planted_instance(8, 8, 0.5, 0, rng=2)
        p = save_instance(tmp_path / "noext", inst)
        assert p.suffix == ".npz"
        assert load_instance(p).shape == (8, 8)

    def test_kind_mismatch_rejected(self, tmp_path):
        inst = planted_instance(8, 8, 0.5, 0, rng=3)
        oracle = ProbeOracle(inst)
        run = find_preferences(oracle, 0.5, 0, rng=4)
        p = save_run(tmp_path / "run.npz", run)
        with pytest.raises(ValueError):
            load_instance(p)


class TestRunRoundTrip:
    def _run(self):
        inst = planted_instance(32, 32, 0.5, 0, rng=5)
        oracle = ProbeOracle(inst)
        return find_preferences(oracle, 0.5, 0, rng=6)

    def test_outputs_and_stats(self, tmp_path):
        run = self._run()
        loaded = load_run(save_run(tmp_path / "r.npz", run))
        assert np.array_equal(loaded.outputs, run.outputs)
        assert np.array_equal(loaded.stats.per_player, run.stats.per_player)
        assert loaded.algorithm == run.algorithm
        assert loaded.rounds == run.rounds

    def test_meta_scalars_kept(self, tmp_path):
        run = self._run()
        run.meta["note"] = "hello"  # repro: noqa[RPL003] — io robustness: off-vocabulary key
        run.meta["unpicklable"] = object()  # silently dropped  # repro: noqa[RPL003]
        loaded = load_run(save_run(tmp_path / "r.npz", run))
        assert loaded.meta["note"] == "hello"
        assert "unpicklable" not in loaded.meta
        assert loaded.meta["alpha"] == 0.5

    def test_kind_mismatch_rejected(self, tmp_path):
        inst = planted_instance(8, 8, 0.5, 0, rng=7)
        p = save_instance(tmp_path / "i.npz", inst)
        with pytest.raises(ValueError):
            load_run(p)

    def test_wildcard_outputs_roundtrip(self, tmp_path):
        # Large Radius outputs may contain -1 wildcards; they must
        # survive the archive byte-exactly.
        from repro.core.large_radius import large_radius

        inst = planted_instance(48, 48, 0.5, 16, rng=8)
        oracle = ProbeOracle(inst)
        from repro.billboard.accounting import ProbeStats
        from repro.core.result import RunResult

        out = large_radius(oracle, 0.5, 16, rng=9)
        run = RunResult(outputs=out, stats=oracle.stats(), algorithm="large_radius")
        loaded = load_run(save_run(tmp_path / "lr.npz", run))
        assert np.array_equal(loaded.outputs, out)
        assert loaded.outputs.dtype == out.dtype


class TestProbeStatsRoundTrip:
    def _stats(self):
        inst = planted_instance(16, 16, 0.5, 0, rng=10)
        oracle = ProbeOracle(inst)
        find_preferences(oracle, 0.5, 0, rng=11)
        return oracle.stats()

    def test_per_player_exact(self, tmp_path):
        stats = self._stats()
        loaded = load_probe_stats(save_probe_stats(tmp_path / "stats.npz", stats))
        assert isinstance(loaded, ProbeStats)
        assert np.array_equal(loaded.per_player, stats.per_player)

    def test_suffix_added(self, tmp_path):
        p = save_probe_stats(tmp_path / "noext", self._stats())
        assert p.suffix == ".npz"

    def test_kind_mismatch_rejected(self, tmp_path):
        inst = planted_instance(8, 8, 0.5, 0, rng=12)
        p = save_instance(tmp_path / "i.npz", inst)
        with pytest.raises(ValueError, match="probe stats"):
            load_probe_stats(p)


class TestFormatVersioning:
    def test_current_version_embedded(self, tmp_path):
        inst = planted_instance(8, 8, 0.5, 0, rng=13)
        p = save_instance(tmp_path / "i.npz", inst)
        with np.load(p) as data:
            meta = json.loads(bytes(data["meta_json"]).decode())
        assert meta["version"] == FORMAT_VERSION
        assert FORMAT_VERSION in SUPPORTED_VERSIONS

    def test_version_1_archive_still_loads(self, tmp_path):
        inst = planted_instance(8, 8, 0.5, 0, rng=14)
        p = rewrite_meta(save_instance(tmp_path / "i.npz", inst), version=1)
        assert np.array_equal(load_instance(p).prefs, inst.prefs)

    def test_unversioned_archive_defaults_to_version_1(self, tmp_path):
        """Archives written before the version gate carry no tag."""
        inst = planted_instance(8, 8, 0.5, 0, rng=15)
        p = rewrite_meta(save_instance(tmp_path / "i.npz", inst), version=None)
        assert np.array_equal(load_instance(p).prefs, inst.prefs)

    @pytest.mark.parametrize("loader,saver,payload", [
        (load_instance, save_instance, "instance"),
        (load_run, save_run, "run"),
        (load_probe_stats, save_probe_stats, "stats"),
    ])
    def test_future_version_rejected(self, tmp_path, loader, saver, payload):
        inst = planted_instance(8, 8, 0.5, 0, rng=16)
        if payload == "instance":
            obj = inst
        elif payload == "run":
            obj = find_preferences(ProbeOracle(inst), 0.5, 0, rng=17)
        else:
            oracle = ProbeOracle(inst)
            find_preferences(oracle, 0.5, 0, rng=17)
            obj = oracle.stats()
        p = rewrite_meta(saver(tmp_path / "a.npz", obj), version=FORMAT_VERSION + 1)
        with pytest.raises(ValueError, match="format version"):
            loader(p)
