"""Tests for dynamic (drifting) preference workloads."""

import numpy as np
import pytest

from repro.metrics.hamming import hamming
from repro.workloads.dynamic import DynamicInstance, track_preferences


class TestDynamicInstance:
    def test_planted_construction(self):
        dyn = DynamicInstance.planted(64, 64, 0.5, 0, drift=4, rng=0)
        assert dyn.epoch == 0
        assert dyn.instance.shape == (64, 64)

    def test_step_advances_epoch(self):
        dyn = DynamicInstance.planted(32, 32, 0.5, 0, drift=2, rng=1)
        dyn.step()
        assert dyn.epoch == 1
        assert "epoch1" in dyn.instance.name

    def test_drift_moves_center_by_drift(self):
        dyn = DynamicInstance.planted(32, 64, 0.5, 0, drift=5, rng=2)
        before = dyn.instance.main_community().center.copy()
        dyn.step()
        after = dyn.instance.main_community().center
        assert hamming(before, after) == 5

    def test_members_follow_center(self):
        # D=0: members stay exactly on the (moving) center.
        dyn = DynamicInstance.planted(32, 64, 0.5, 0, drift=5, rng=3)
        dyn.step()
        comm = dyn.instance.main_community()
        rows = dyn.instance.prefs[comm.members]
        assert (rows == comm.center).all()
        assert comm.diameter == 0

    def test_diameter_preserved_under_drift(self):
        dyn = DynamicInstance.planted(48, 96, 0.5, 6, drift=10, rng=4)
        d0 = dyn.instance.main_community().diameter
        for _ in range(3):
            dyn.step()
        assert dyn.instance.main_community().diameter == d0

    def test_zero_drift_is_identity(self):
        dyn = DynamicInstance.planted(32, 32, 0.5, 0, drift=0, rng=5)
        before = dyn.instance.prefs.copy()
        dyn.step()
        assert np.array_equal(dyn.instance.prefs, before)

    def test_outsiders_also_drift(self):
        dyn = DynamicInstance.planted(32, 64, 0.5, 0, drift=4, rng=6)
        members = set(dyn.instance.main_community().members.tolist())
        outsiders = [p for p in range(32) if p not in members]
        before = dyn.instance.prefs[outsiders].copy()
        dyn.step()
        after = dyn.instance.prefs[outsiders]
        assert (before != after).sum(axis=1).tolist() == [4] * len(outsiders)

    def test_drift_validation(self):
        with pytest.raises(ValueError):
            DynamicInstance.planted(16, 16, 0.5, 0, drift=-1, rng=7)


class TestTracking:
    def test_history_length(self):
        dyn = DynamicInstance.planted(64, 64, 0.5, 0, drift=4, rng=8)
        history = track_preferences(dyn, 0.5, 0, epochs=3, rng=9)
        assert len(history) == 3
        assert dyn.epoch == 3

    def test_each_epoch_scored_against_its_matrix(self):
        dyn = DynamicInstance.planted(64, 64, 0.5, 0, drift=8, rng=10)
        history = track_preferences(dyn, 0.5, 0, epochs=3, rng=11)
        for inst, res in history:
            comm = inst.main_community()
            errs = (res.outputs[comm.members] != inst.prefs[comm.members]).sum(axis=1)
            assert errs.max() == 0

    def test_epochs_validation(self):
        dyn = DynamicInstance.planted(16, 16, 0.5, 0, drift=1, rng=12)
        with pytest.raises(ValueError):
            track_preferences(dyn, 0.5, 0, epochs=0)
