"""Tests for cost profiling and the ASCII plot helpers."""

import numpy as np
import pytest

from repro.analysis.cost_profile import CostSummary, load_imbalance, phase_breakdown, summarize
from repro.billboard.accounting import ProbeStats
from repro.billboard.oracle import ProbeOracle
from repro.utils.ascii_plot import line_plot, sparkline


class TestSummarize:
    def test_basic(self):
        s = summarize(ProbeStats(np.asarray([10, 20, 30, 40])))
        assert s.total == 100
        assert s.rounds == 40
        assert s.mean == 25.0
        assert s.median == 25.0
        assert s.imbalance == pytest.approx(1.6)

    def test_empty(self):
        s = summarize(ProbeStats(np.asarray([], dtype=np.int64)))
        assert s == CostSummary(0, 0, 0.0, 0.0, 0.0, 1.0)

    def test_all_zero(self):
        s = summarize(ProbeStats(np.zeros(5, dtype=np.int64)))
        assert s.imbalance == 1.0

    def test_p90(self):
        s = summarize(ProbeStats(np.arange(101)))
        assert s.p90 == 90.0

    def test_load_imbalance_shortcut(self):
        stats = ProbeStats(np.asarray([1, 3]))
        assert load_imbalance(stats) == summarize(stats).imbalance


class TestPhaseBreakdown:
    def test_table_contents(self):
        oracle = ProbeOracle(np.zeros((4, 8), dtype=np.int8))
        oracle.start_phase("warmup")  # repro: noqa[RPL005] — exercises the manual pair API
        oracle.probe(0, 0)
        oracle.finish_phase("warmup")  # repro: noqa[RPL005]
        oracle.start_phase("main")  # repro: noqa[RPL005]
        oracle.probe_all(1, np.arange(8))
        oracle.finish_phase("main")  # repro: noqa[RPL005]
        table = phase_breakdown(oracle)
        assert [r["phase"] for r in table.rows] == ["warmup", "main"]
        assert table.rows[1]["total"] == 8
        assert table.rows[1]["share"] == "89%"

    def test_no_phases(self):
        oracle = ProbeOracle(np.zeros((2, 2), dtype=np.int8))
        assert phase_breakdown(oracle).rows == []


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_monotone(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁" and line[-1] == "█"

    def test_length(self):
        assert len(sparkline(range(10))) == 10


class TestLinePlot:
    def test_renders_axes_and_legend(self):
        out = line_plot({"a": ([1, 2, 3], [1, 4, 9])}, width=20, height=6, x_label="n", y_label="cost")
        assert "cost" in out and "n: 1 .. 3" in out
        assert "o a" in out

    def test_multiple_series_markers(self):
        out = line_plot({"a": ([0, 1], [0, 1]), "b": ([0, 1], [1, 0])}, width=10, height=5)
        assert "o" in out and "x" in out

    def test_constant_series(self):
        out = line_plot({"flat": ([1, 2], [5, 5])}, width=10, height=4)
        assert "top=5" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"a": ([1], [1, 2])})
        with pytest.raises(ValueError):
            line_plot({"a": ([1], [1])}, width=2, height=2)
