"""Dense-vs-packed substrate observation-equivalence.

The contract the packed substrate rests on: storing the hidden matrix
and billboard vote channels bit-packed (and answering probes / gathers /
Hamming kernels from packed words) is a *storage* change, not an
algorithmic one.  Everything observable must be preserved exactly:

* each player's outputs,
* each player's charged-probe count, and
* each player's own probe sequence (the objects it probed, in order).

These tests run every algorithm branch twice — packed (the default) and
wholly inside :func:`repro.metrics.bitpack.dense_substrate` (the dense
``int8`` reference representation) — and assert all three invariants,
then pin the dense mode to the golden seed digests (duplicated from
``tests/test_batching_equivalence.py`` on purpose: that file pins the
packed default, this one pins the dense reference, and either regression
fails its own guard).  A second axis pins the popcount engines: the
16-bit-LUT fallback must count identically to ``np.bitwise_count``.
"""

import hashlib

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.billboard.trace import ProbeTrace
from repro.core.main import (
    anytime_find_preferences,
    find_preferences,
    find_preferences_unknown_d,
)
from repro.metrics.bitpack import (
    dense_substrate,
    lut_popcount,
    native_popcount_enabled,
    packed_substrate,
    packed_substrate_enabled,
)
from repro.workloads.planted import planted_instance

N = M = 128
ALPHA = 0.5
INSTANCE_SEED = 13
ALGO_SEED = 17

#: sha256(outputs || per-player counts) and total probes, captured from
#: the pre-batching seed code (commit b213d42) — the same constants
#: tests/test_batching_equivalence.py and tests/test_obs.py guard.
GOLDEN = {
    "zero_radius": ("9d2b88ed3cc23bca", 2048),
    "small_radius": ("c7ca0a9af69f160b", 65536),
    "large_radius": ("54bc2871ce5b84ea", 14112),
    "unknown_d": ("23dbf4633d0f463f", 166391),
}

#: (D, driver) per branch: zero_radius exercises the Select voting path,
#: large_radius exercises RSelect, unknown_d the doubling wrapper, and
#: anytime the phase loop the serving layer wraps.
_CONFIGS = {
    "zero_radius": (0, "known"),
    "small_radius": (2, "known"),
    "large_radius": (40, "known"),
    "unknown_d": (2, "unknown"),
    "anytime": (2, "anytime"),
}


def _digest(*arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()[:16]


def _run_config(label: str):
    D, driver = _CONFIGS[label]
    inst = planted_instance(N, M, ALPHA, D, rng=INSTANCE_SEED)
    oracle = ProbeOracle(inst)
    trace = ProbeTrace()
    oracle.attach_trace(trace)
    if driver == "unknown":
        result = find_preferences_unknown_d(oracle, ALPHA, rng=ALGO_SEED, d_max=4)
    elif driver == "anytime":
        result = anytime_find_preferences(oracle, rng=ALGO_SEED, d_max=4, max_phases=2)
    else:
        result = find_preferences(oracle, ALPHA, D, rng=ALGO_SEED)
    return result, oracle, trace


class TestPackedMatchesDense:
    """Packed and dense substrates are observation-equivalent."""

    @pytest.mark.parametrize("label", sorted(_CONFIGS))
    def test_outputs_counts_and_per_player_sequences(self, label):
        assert packed_substrate_enabled()
        packed_result, packed_oracle, packed_trace = _run_config(label)
        with dense_substrate():
            assert not packed_substrate_enabled()
            dense_result, dense_oracle, dense_trace = _run_config(label)
        assert packed_substrate_enabled()

        assert np.array_equal(packed_result.outputs, dense_result.outputs)
        assert np.array_equal(
            packed_oracle.stats().per_player, dense_oracle.stats().per_player
        )
        for player in range(N):
            assert np.array_equal(
                packed_trace.player_sequence(player),
                dense_trace.player_sequence(player),
            ), f"{label}: probe sequence diverged for player {player}"

    @pytest.mark.parametrize("label", sorted(GOLDEN))
    def test_dense_mode_matches_seed_golden(self, label):
        # The packed default is pinned to these digests by
        # tests/test_batching_equivalence.py; pin the dense reference too
        # so neither representation can drift from the seed semantics.
        with dense_substrate():
            result, oracle, _ = _run_config(label)
        digest, total = GOLDEN[label]
        assert oracle.stats().total == total
        assert _digest(result.outputs, oracle.stats().per_player) == digest


class TestPopcountEngines:
    """Native np.bitwise_count and the 16-bit LUT count identically."""

    def test_lut_fallback_matches_seed_golden(self):
        with lut_popcount():
            assert not native_popcount_enabled()
            result, oracle, _ = _run_config("small_radius")
        digest, total = GOLDEN["small_radius"]
        assert oracle.stats().total == total
        assert _digest(result.outputs, oracle.stats().per_player) == digest

    def test_lut_toggle_restores_on_exception(self):
        before = native_popcount_enabled()
        with pytest.raises(RuntimeError):
            with lut_popcount():
                raise RuntimeError("boom")
        assert native_popcount_enabled() == before


class TestServeKillRestore:
    """The serving runtime is substrate-agnostic, including snapshots."""

    SERVE_N = 48
    CONFIG = dict(seed=11, max_phases=2, d_max=4)
    ROUTER = dict(window=16, probes_per_request=8)

    def _service_run(self):
        from repro.serve import MicroBatchRouter, RouterConfig, ServeConfig, ServeService
        from repro.workloads.registry import make_instance

        inst = make_instance("planted", self.SERVE_N, self.SERVE_N, 0.5, 2, rng=5)
        service = ServeService(inst, config=ServeConfig(**self.CONFIG))  # repro: noqa[RPL012]
        outputs = MicroBatchRouter(  # repro: noqa[RPL012]
            service, config=RouterConfig(**self.ROUTER)
        ).run_to_completion()
        return outputs, service

    def test_dense_service_matches_packed(self):
        packed_outputs, packed_service = self._service_run()
        with dense_substrate():
            dense_outputs, dense_service = self._service_run()
        assert np.array_equal(packed_outputs, dense_outputs)
        assert np.array_equal(
            packed_service.oracle.stats().per_player,
            dense_service.oracle.stats().per_player,
        )

    def test_cross_substrate_kill_restore(self, tmp_path):
        """A snapshot cut under one substrate restores bit-identically
        under the other: archives store logical matrices, not storage."""
        from repro.serve import (
            MicroBatchRouter,
            RouterConfig,
            ServeConfig,
            ServeService,
            load_service,
            save_service,
        )
        from repro.workloads.registry import make_instance

        ref_outputs, ref_service = self._service_run()
        inst = make_instance("planted", self.SERVE_N, self.SERVE_N, 0.5, 2, rng=5)
        service = ServeService(inst, config=ServeConfig(**self.CONFIG))  # repro: noqa[RPL012]
        router = MicroBatchRouter(service, config=RouterConfig(**self.ROUTER))  # repro: noqa[RPL012]
        for _ in range(3):
            for session in service.sessions:
                if session.status not in ("complete", "drained"):
                    router.submit(session.player)
            router.flush()
        path = save_service(tmp_path / "svc.npz", service)
        with dense_substrate():
            restored = load_service(path)
            outputs = MicroBatchRouter(  # repro: noqa[RPL012]
                restored, config=RouterConfig(**self.ROUTER)
            ).run_to_completion()
        assert np.array_equal(outputs, ref_outputs)
        assert np.array_equal(
            restored.oracle.stats().per_player,
            ref_service.oracle.stats().per_player,
        )


class TestToggleScoping:
    def test_default_is_packed(self):
        assert packed_substrate_enabled()

    def test_dense_substrate_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with dense_substrate():
                raise RuntimeError("boom")
        assert packed_substrate_enabled()

    def test_toggle_nests(self):
        with dense_substrate():
            with packed_substrate():
                assert packed_substrate_enabled()
            assert not packed_substrate_enabled()
        assert packed_substrate_enabled()

    def test_storage_decision_is_construction_time(self):
        inst = planted_instance(16, 16, 0.5, 0, rng=0)
        with dense_substrate():
            oracle = ProbeOracle(inst)
        # Built dense; probing outside the block must stay dense (and
        # correct) — the toggle never migrates existing storage.
        assert oracle.probe(0, 0) == int(inst.prefs[0, 0])
