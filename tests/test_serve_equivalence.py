"""The serving runtime's pinned contract: observation equivalence.

A :class:`ServeService` driven to completion by the micro-batching
router must be **bitwise equal** — final outputs *and* per-player probe
counts — to the offline :func:`repro.core.main.anytime_find_preferences`
for the same seed, regardless of batching window, probe grant, arrival
order, or whether probes go through ``probe_many`` wavefronts or scalar
calls.  These tests are the golden pin of that claim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.main import anytime_find_preferences
from repro.serve import MicroBatchRouter, RouterConfig, ServeConfig, ServeService
from repro.workloads.registry import make_instance

N = 48
SEED = 11
MAX_PHASES = 2
D_MAX = 4


@pytest.fixture(scope="module")
def instance():
    return make_instance("planted", N, N, 0.5, 2, rng=5)


@pytest.fixture(scope="module")
def offline(instance):
    """The offline anytime reference run (same seed the service uses)."""
    oracle = ProbeOracle(instance)
    run = anytime_find_preferences(oracle, rng=SEED, max_phases=MAX_PHASES, d_max=D_MAX)
    return run.outputs, oracle.stats().per_player.copy()


def _serve(instance, *, router_config, budget=None):
    service = ServeService(  # repro: noqa[RPL012]
        instance,
        config=ServeConfig(seed=SEED, max_phases=MAX_PHASES, d_max=D_MAX, budget=budget),
    )
    router = MicroBatchRouter(service, config=router_config)  # repro: noqa[RPL012]
    outputs = router.run_to_completion()
    return service, outputs


class TestBitwiseEquivalence:
    def test_micro_batched_matches_offline(self, instance, offline):
        ref_outputs, ref_counts = offline
        service, outputs = _serve(
            instance, router_config=RouterConfig(window=16, probes_per_request=8)
        )
        assert service.stage == "done"
        assert np.array_equal(outputs, ref_outputs)
        assert np.array_equal(service.oracle.stats().per_player, ref_counts)

    def test_scalar_probe_path_matches_offline(self, instance, offline):
        """micro_batch=False issues per-probe oracle calls — same bits."""
        ref_outputs, ref_counts = offline
        service, outputs = _serve(
            instance,
            router_config=RouterConfig(window=7, probes_per_request=3, micro_batch=False),
        )
        assert np.array_equal(outputs, ref_outputs)
        assert np.array_equal(service.oracle.stats().per_player, ref_counts)

    @pytest.mark.parametrize("window,grant", [(1, 1), (5, 2), (64, 128)])
    def test_schedule_insensitivity(self, instance, offline, window, grant):
        """Any window/grant combination serves the same bits."""
        ref_outputs, ref_counts = offline
        service, outputs = _serve(
            instance, router_config=RouterConfig(window=window, probes_per_request=grant)
        )
        assert np.array_equal(outputs, ref_outputs)
        assert np.array_equal(service.oracle.stats().per_player, ref_counts)

    def test_phase_alphas_match_offline(self, instance):
        service, _ = _serve(instance, router_config=RouterConfig())
        assert service.completed == [2.0**-j for j in range(MAX_PHASES)]
        assert service.phases_completed == MAX_PHASES


class TestGracefulDegradation:
    def test_budgeted_service_matches_budgeted_offline(self, instance):
        """Exhaustion cuts at the same phase barrier as the offline loop."""
        budget = 80
        oracle = ProbeOracle(instance, budget=budget)
        run = anytime_find_preferences(oracle, rng=SEED, max_phases=MAX_PHASES, d_max=D_MAX)
        service, outputs = _serve(
            instance, router_config=RouterConfig(window=16, probes_per_request=8), budget=budget
        )
        assert service.stage == "drained"
        assert service.exhausted
        assert np.array_equal(outputs, run.outputs)

    def test_drained_sessions_answer_without_error(self, instance):
        service, _ = _serve(instance, router_config=RouterConfig(), budget=80)
        router = MicroBatchRouter(service)  # repro: noqa[RPL012]
        router.submit(0)
        responses = router.flush()
        assert len(responses) == 1
        assert responses[0].status == "drained"
        assert responses[0].estimate.shape == (N,)

    def test_unbudgeted_service_never_drains(self, instance):
        service, _ = _serve(instance, router_config=RouterConfig())
        assert not service.exhausted
        assert service.sessions.count("complete") == N


class TestRouterSurface:
    def test_query_does_not_advance(self, instance):
        service = ServeService(  # repro: noqa[RPL012]
            instance, config=ServeConfig(seed=SEED, max_phases=1, d_max=2)
        )
        router = MicroBatchRouter(service)  # repro: noqa[RPL012]
        before = int(service.oracle.stats().per_player.sum())
        response = router.query(3)
        assert response.player == 3
        assert response.probes_used == 0
        assert int(service.oracle.stats().per_player.sum()) == before

    def test_submit_validates_player_and_grant(self, instance):
        router = MicroBatchRouter(  # repro: noqa[RPL012]
            ServeService(instance, config=ServeConfig(seed=SEED, max_phases=1, d_max=2))  # repro: noqa[RPL012]
        )
        with pytest.raises(ValueError, match="out of range"):
            router.submit(N)
        with pytest.raises(ValueError, match="must be positive"):
            router.submit(0, probes=0)

    def test_window_auto_flush(self, instance):
        service = ServeService(  # repro: noqa[RPL012]
            instance, config=ServeConfig(seed=SEED, max_phases=1, d_max=2)
        )
        router = MicroBatchRouter(service, config=RouterConfig(window=4))  # repro: noqa[RPL012]
        for player in range(3):
            router.submit(player)
        assert router.pending == 3
        router.submit(3)  # fills the window
        assert router.pending == 0
        responses = router.flush()
        assert {r.player for r in responses} == {0, 1, 2, 3}

    def test_responses_carry_probe_usage(self, instance):
        service = ServeService(  # repro: noqa[RPL012]
            instance, config=ServeConfig(seed=SEED, max_phases=1, d_max=2)
        )
        router = MicroBatchRouter(service, config=RouterConfig(window=N))  # repro: noqa[RPL012]
        for player in range(N):
            router.submit(player, probes=4)
        responses = router.flush()
        assert len(responses) == N
        assert all(0 <= r.probes_used <= 4 for r in responses)
        assert sum(r.probes_used for r in responses) == int(
            service.oracle.stats().per_player.sum()
        )

    def test_router_config_validation(self):
        with pytest.raises(ValueError, match="window"):
            RouterConfig(window=0)
        with pytest.raises(ValueError, match="probes_per_request"):
            RouterConfig(probes_per_request=-1)
