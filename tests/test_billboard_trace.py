"""Tests for probe-event tracing."""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.billboard.trace import ProbeEvent, ProbeTrace
from repro.core.main import find_preferences
from repro.workloads.planted import planted_instance


@pytest.fixture
def traced_oracle():
    prefs = np.asarray([[0, 1, 0], [1, 0, 1]], dtype=np.int8)
    oracle = ProbeOracle(prefs)
    trace = ProbeTrace()
    oracle.attach_trace(trace)
    return oracle, trace


class TestRecording:
    def test_scalar_probe_recorded(self, traced_oracle):
        oracle, trace = traced_oracle
        oracle.probe(0, 1)
        assert len(trace) == 1
        e = trace[0]
        assert (e.player, e.obj, e.value, e.charged) == (0, 1, 1, True)

    def test_batch_probe_recorded_in_order(self, traced_oracle):
        oracle, trace = traced_oracle
        oracle.probe_many(np.asarray([0, 1]), np.asarray([2, 0]))
        assert len(trace) == 2
        assert trace[0].obj == 2
        assert trace[1].player == 1

    def test_uncharged_reprobe_marked(self):
        prefs = np.zeros((2, 2), dtype=np.int8)
        oracle = ProbeOracle(prefs, charge_repeats=False)
        trace = ProbeTrace()
        oracle.attach_trace(trace)
        oracle.probe(0, 0)
        oracle.probe(0, 0)
        assert trace[0].charged and not trace[1].charged

    def test_negative_index(self, traced_oracle):
        oracle, trace = traced_oracle
        oracle.probe(0, 0)
        oracle.probe(1, 1)
        assert trace[-1].player == 1

    def test_iteration_yields_events(self, traced_oracle):
        oracle, trace = traced_oracle
        oracle.probe(0, 0)
        events = list(trace)
        assert len(events) == 1
        assert isinstance(events[0], ProbeEvent)
        assert events[0].seq == 0


class TestAnalysis:
    def test_charged_counts_match_oracle(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=90)
        oracle = ProbeOracle(inst)
        trace = ProbeTrace()
        oracle.attach_trace(trace)
        find_preferences(oracle, 0.5, 0, rng=91)
        assert np.array_equal(trace.charged_counts(64), oracle.stats().per_player)

    def test_replay_mask_matches_billboard(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=92)
        oracle = ProbeOracle(inst)
        trace = ProbeTrace()
        oracle.attach_trace(trace)
        find_preferences(oracle, 0.5, 0, rng=93)
        assert np.array_equal(
            trace.replay_mask(64, 64), np.asarray(oracle.billboard.revealed_mask())
        )

    def test_events_for_player(self, traced_oracle):
        oracle, trace = traced_oracle
        oracle.probe(0, 0)
        oracle.probe(1, 1)
        oracle.probe(0, 2)
        mine = trace.events_for_player(0)
        assert [e.obj for e in mine] == [0, 2]

    def test_as_arrays(self, traced_oracle):
        oracle, trace = traced_oracle
        oracle.probe(0, 1)
        cols = trace.as_arrays()
        assert cols["players"].tolist() == [0]
        assert cols["objects"].tolist() == [1]
        assert cols["values"].tolist() == [1]
        assert cols["charged"].tolist() == [True]

    def test_values_are_true_grades(self):
        inst = planted_instance(32, 32, 0.5, 0, rng=94)
        oracle = ProbeOracle(inst)
        trace = ProbeTrace()
        oracle.attach_trace(trace)
        find_preferences(oracle, 0.5, 0, rng=95)
        cols = trace.as_arrays()
        assert (inst.prefs[cols["players"], cols["objects"]] == cols["values"]).all()

    def test_tracing_does_not_change_outputs(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=96)
        o1 = ProbeOracle(inst)
        res1 = find_preferences(o1, 0.5, 0, rng=97)
        o2 = ProbeOracle(inst)
        o2.attach_trace(ProbeTrace())
        res2 = find_preferences(o2, 0.5, 0, rng=97)
        assert np.array_equal(res1.outputs, res2.outputs)
        assert res1.rounds == res2.rounds
