"""Tests for the Byzantine-player extension."""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.zero_radius import NO_OUTPUT
from repro.extensions.byzantine import run_zero_radius_with_byzantine
from repro.workloads.planted import planted_instance


class TestRunWithByzantine:
    def test_zero_fraction_matches_honest_run(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=0)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out, bad, result = run_zero_radius_with_byzantine(oracle, 0.5, 0.0, rng=1)
        assert not bad.any()
        assert np.array_equal(out[comm.members], inst.prefs[comm.members])

    def test_fraction_materialised(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=2)
        oracle = ProbeOracle(inst)
        _, bad, _ = run_zero_radius_with_byzantine(oracle, 0.5, 0.25, rng=3)
        assert bad.sum() == 16

    def test_small_fraction_honest_members_recover(self):
        inst = planted_instance(128, 128, 0.5, 0, rng=4)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out, bad, _ = run_zero_radius_with_byzantine(oracle, 0.5, 0.1, rng=5)
        honest = [p for p in comm.members if not bad[p]]
        assert (out[honest] == inst.prefs[honest]).all()

    def test_majority_liars_break_recovery(self):
        inst = planted_instance(128, 128, 0.5, 0, rng=6)
        comm = inst.main_community()
        errs_max = 0
        for seed in (7, 8):
            oracle = ProbeOracle(inst)
            out, bad, _ = run_zero_radius_with_byzantine(oracle, 0.5, 0.7, rng=seed)
            honest = [p for p in comm.members if not bad[p]]
            errs = (out[honest] != inst.prefs[honest]).sum(axis=1)
            errs_max = max(errs_max, int(errs.max()))
        assert errs_max > 0

    def test_all_players_produce_output(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=9)
        oracle = ProbeOracle(inst)
        out, _, result = run_zero_radius_with_byzantine(oracle, 0.5, 0.25, rng=10)
        assert not (out == NO_OUTPUT).any()
        assert len(result.outputs) == 64

    def test_liars_cost_extra_select_probes_only(self):
        inst = planted_instance(128, 128, 0.5, 0, rng=11)
        o_clean = ProbeOracle(inst)
        _, _, clean = run_zero_radius_with_byzantine(o_clean, 0.5, 0.0, rng=12)
        o_dirty = ProbeOracle(inst)
        _, _, dirty = run_zero_radius_with_byzantine(o_dirty, 0.5, 0.2, rng=12)
        assert dirty.probe_rounds <= 2 * clean.probe_rounds

    def test_fraction_validation(self):
        oracle = ProbeOracle(np.zeros((8, 8), dtype=np.int8))
        with pytest.raises(ValueError):
            run_zero_radius_with_byzantine(oracle, 0.5, 1.0)
        with pytest.raises(ValueError):
            run_zero_radius_with_byzantine(oracle, 0.5, -0.1)
