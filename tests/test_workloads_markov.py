"""Tests for the §2 probabilistic (Markov/type) workload."""

import numpy as np
import pytest

from repro.workloads.markov import markov_instance


class TestMarkovInstance:
    def test_shape_and_communities(self):
        inst = markov_instance(60, 80, 3, rng=0)
        assert inst.shape == (60, 80)
        assert len(inst.communities) == 3
        assert all(c.size >= 1 for c in inst.communities)

    def test_large_type_diameters(self):
        # Bernoulli sampling makes same-type rows genuinely far apart —
        # the defining difference from the mixture workload.
        inst = markov_instance(60, 256, 2, rng=1)
        assert min(c.diameter for c in inst.communities) > 5

    def test_core_objects_mostly_liked(self):
        inst = markov_instance(100, 100, 1, core_size=20, core_like=0.95, rng=2)
        comm = inst.communities[0]
        core = np.flatnonzero(comm.center == 1)
        assert core.size >= 20
        like_rate = inst.prefs[:, core].mean()
        assert like_rate > 0.8

    def test_tail_sparse(self):
        inst = markov_instance(100, 200, 1, core_size=0, tail_like=0.02, rng=3)
        assert inst.prefs.mean() < 0.15

    def test_weights_respected(self):
        inst = markov_instance(200, 40, 2, weights=[0.9, 0.1], rng=4)
        sizes = sorted(c.size for c in inst.communities)
        assert sizes[1] > 3 * sizes[0]

    def test_zipf_popularity_monotone(self):
        # With zero cores, popular objects must be liked more often.
        inst = markov_instance(400, 100, 1, core_size=0, tail_like=0.1, zipf_s=1.5, rng=5)
        col_rates = inst.prefs.mean(axis=0)
        top = np.sort(col_rates)[-10:].mean()
        bottom = np.sort(col_rates)[:10].mean()
        assert top > bottom

    def test_reproducible(self):
        a = markov_instance(30, 30, 2, rng=6)
        b = markov_instance(30, 30, 2, rng=6)
        assert np.array_equal(a.prefs, b.prefs)

    def test_validation(self):
        with pytest.raises(ValueError):
            markov_instance(5, 10, 8)
        with pytest.raises(ValueError):
            markov_instance(10, 10, 2, core_size=50)
        with pytest.raises(ValueError):
            markov_instance(10, 10, 2, zipf_s=-1)
        with pytest.raises(ValueError):
            markov_instance(10, 10, 2, weights=[1.0])

    def test_every_type_inhabited(self):
        inst = markov_instance(12, 20, 4, weights=[0.97, 0.01, 0.01, 0.01], rng=7)
        assert all(c.size >= 1 for c in inst.communities)
