"""Tests for the player-local Small Radius program (engine twin of Fig. 4)."""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.core.small_radius import small_radius
from repro.core.zero_radius import NO_OUTPUT
from repro.engine import SmallRadiusCoins, run_small_radius_engine
from repro.metrics.evaluation import evaluate
from repro.workloads.planted import planted_instance


class TestSmallRadiusCoins:
    def test_draw_shapes(self):
        coins = SmallRadiusCoins.draw(np.arange(32), 32, 0.5, 2, n_global=32, rng=0, K=2)
        assert coins.K == 2
        assert len(coins.parts) == 2
        for parts, trees in zip(coins.parts, coins.trees):
            assert len(parts) == len(trees)
            covered = np.sort(np.concatenate(parts))
            assert covered.size <= 32  # empty parts dropped, others disjoint
            assert np.unique(covered).size == covered.size

    def test_deterministic(self):
        a = SmallRadiusCoins.draw(np.arange(32), 32, 0.5, 2, n_global=32, rng=5, K=2)
        b = SmallRadiusCoins.draw(np.arange(32), 32, 0.5, 2, n_global=32, rng=5, K=2)
        for pa, pb in zip(a.parts, b.parts):
            for x, y in zip(pa, pb):
                assert np.array_equal(x, y)


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("seed,D", [(7, 2), (13, 1), (29, 3)])
    def test_matches_global(self, seed, D):
        inst = planted_instance(48, 48, 0.5, D, rng=seed)
        players, objects = np.arange(48), np.arange(48)
        o1 = ProbeOracle(inst)
        global_out = small_radius(o1, players, objects, 0.5, D, rng=seed + 50, K=2)
        o2 = ProbeOracle(inst)
        engine_out, result = run_small_radius_engine(
            o2, players, objects, 0.5, D, rng=seed + 50, K=2
        )
        assert np.array_equal(global_out, engine_out)
        assert np.array_equal(o1.stats().per_player, o2.stats().per_player)
        assert result.probe_rounds == o1.stats().rounds

    def test_object_subset(self):
        inst = planted_instance(40, 64, 0.5, 2, rng=3)
        players = np.arange(40)
        objects = np.arange(8, 40)
        o1 = ProbeOracle(inst)
        g = small_radius(o1, players, objects, 0.5, 2, rng=9, K=2)
        o2 = ProbeOracle(inst)
        e, _ = run_small_radius_engine(o2, players, objects, 0.5, 2, rng=9, K=2)
        assert np.array_equal(g, e)


class TestQuality:
    def test_error_bound_holds(self):
        inst = planted_instance(48, 48, 0.5, 2, rng=11)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out, _ = run_small_radius_engine(
            oracle, np.arange(48), np.arange(48), 0.5, 2, rng=12, K=2
        )
        rep = evaluate(out.astype(np.int8), inst.prefs, comm.members, diam=comm.diameter)
        assert rep.discrepancy <= 10

    def test_lockstep_rounds_upper_bound_probe_rounds(self):
        inst = planted_instance(48, 48, 0.5, 2, rng=14)
        oracle = ProbeOracle(inst)
        _, result = run_small_radius_engine(
            oracle, np.arange(48), np.arange(48), 0.5, 2, rng=15, K=2
        )
        assert result.rounds >= result.probe_rounds

    def test_non_participants_marked(self):
        inst = planted_instance(48, 48, 1.0, 2, rng=16)
        players = np.arange(0, 48, 2)
        oracle = ProbeOracle(inst)
        out, _ = run_small_radius_engine(
            oracle, players, np.arange(48), 1.0, 2, rng=17, K=2
        )
        assert (out[np.arange(1, 48, 2)] == NO_OUTPUT).all()
