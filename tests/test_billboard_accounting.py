"""Tests for ProbeStats and PhaseLedger."""

import numpy as np
import pytest

from repro.billboard.accounting import PhaseLedger, ProbeStats


class TestProbeStats:
    def test_totals(self):
        s = ProbeStats(np.asarray([3, 0, 5]))
        assert s.total == 8
        assert s.rounds == 5
        assert s.mean == pytest.approx(8 / 3)

    def test_empty(self):
        s = ProbeStats(np.asarray([], dtype=np.int64))
        assert s.total == 0
        assert s.rounds == 0
        assert s.mean == 0.0

    def test_subtraction(self):
        a = ProbeStats(np.asarray([5, 5]))
        b = ProbeStats(np.asarray([2, 1]))
        assert (a - b).per_player.tolist() == [3, 4]

    def test_subtraction_shape_mismatch(self):
        with pytest.raises(ValueError):
            ProbeStats(np.asarray([1])) - ProbeStats(np.asarray([1, 2]))

    def test_repr(self):
        assert "total=3" in repr(ProbeStats(np.asarray([3])))


class TestPhaseLedger:
    def test_start_finish_delta(self):
        ledger = PhaseLedger()
        ledger.start("p", ProbeStats(np.asarray([1, 1])))
        delta = ledger.finish("p", ProbeStats(np.asarray([4, 2])))
        assert delta.per_player.tolist() == [3, 1]
        assert ledger.get("p").per_player.tolist() == [3, 1]

    def test_repeated_phase_accumulates(self):
        ledger = PhaseLedger()
        for hi in (2, 5):
            ledger.start("p", ProbeStats(np.asarray([0])))
            ledger.finish("p", ProbeStats(np.asarray([hi])))
        assert ledger.get("p").per_player.tolist() == [7]

    def test_double_start_rejected(self):
        ledger = PhaseLedger()
        ledger.start("p", ProbeStats(np.asarray([0])))
        with pytest.raises(ValueError):
            ledger.start("p", ProbeStats(np.asarray([0])))

    def test_finish_without_start_rejected(self):
        ledger = PhaseLedger()
        with pytest.raises(ValueError):
            ledger.finish("p", ProbeStats(np.asarray([0])))

    def test_get_unknown_phase(self):
        with pytest.raises(KeyError):
            PhaseLedger().get("nope")

    def test_iteration_order(self):
        ledger = PhaseLedger()
        for name in ("first", "second"):
            ledger.start(name, ProbeStats(np.asarray([0])))
            ledger.finish(name, ProbeStats(np.asarray([1])))
        assert [n for n, _ in ledger.phases()] == ["first", "second"]

    def test_contains(self):
        ledger = PhaseLedger()
        assert "x" not in ledger
        ledger.start("x", ProbeStats(np.asarray([0])))
        assert "x" not in ledger  # open, not closed
        ledger.finish("x", ProbeStats(np.asarray([0])))
        assert "x" in ledger
