"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import Table, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "--" in lines[1]
        assert len(lines) == 4

    def test_title_first(self):
        out = format_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table(["x"], [[0.123456]])
        assert "0.123" in out

    def test_large_float_compact(self):
        out = format_table(["x"], [[123456.0]])
        assert "1.23e+05" in out

    def test_bool_rendering(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_nan(self):
        out = format_table(["x"], [[float("nan")]])
        assert "nan" in out

    def test_zero(self):
        out = format_table(["x"], [[0.0]])
        assert out.splitlines()[-1].strip() == "0"

    def test_wrong_row_width_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestTable:
    def test_add_and_render(self):
        t = Table("title", ["n", "err"])
        t.add(n=10, err=0.5)
        t.add(n=20, err=0.25)
        out = t.render()
        assert "title" in out
        assert "10" in out and "20" in out

    def test_unknown_column_rejected(self):
        t = Table("t", ["a"])
        with pytest.raises(KeyError):
            t.add(b=1)

    def test_missing_cell_renders_dash(self):
        t = Table("t", ["a", "b"])
        t.add(a=1)
        assert "-" in t.render().splitlines()[-1]

    def test_column_accessor(self):
        t = Table("t", ["a", "b"])
        t.add(a=1, b=2)
        t.add(a=3, b=4)
        assert t.column("a") == [1, 3]

    def test_column_unknown(self):
        t = Table("t", ["a"])
        with pytest.raises(KeyError):
            t.column("z")

    def test_extend(self):
        t = Table("t", ["a"])
        t.extend([{"a": 1}, {"a": 2}])
        assert len(t.rows) == 2

    def test_str_same_as_render(self):
        t = Table("t", ["a"])
        t.add(a=1)
        assert str(t) == t.render()
