"""Tests for random partitions and the Lemma 4.1 success predicate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    is_partition_successful,
    partition_parts,
    partition_players,
    random_halves,
    random_partition,
)


class TestRandomPartition:
    def test_labels_in_range(self):
        labels = random_partition(100, 7, rng=0)
        assert labels.shape == (100,)
        assert labels.min() >= 0 and labels.max() < 7

    def test_single_part(self):
        labels = random_partition(10, 1, rng=0)
        assert (labels == 0).all()

    def test_deterministic(self):
        assert np.array_equal(random_partition(50, 5, rng=3), random_partition(50, 5, rng=3))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            random_partition(0, 3)
        with pytest.raises(ValueError):
            random_partition(3, 0)

    @given(st.integers(1, 200), st.integers(1, 20), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_roughly_uniform(self, n, s, seed):
        labels = random_partition(n, s, rng=seed)
        # every label legal; sizes sum to n
        parts = partition_parts(labels, s)
        assert sum(p.size for p in parts) == n


class TestPartitionParts:
    def test_materialisation(self):
        labels = np.asarray([1, 0, 1, 2, 0])
        parts = partition_parts(labels, 3)
        assert parts[0].tolist() == [1, 4]
        assert parts[1].tolist() == [0, 2]
        assert parts[2].tolist() == [3]

    def test_empty_parts_allowed(self):
        parts = partition_parts(np.asarray([0, 0]), 3)
        assert parts[1].size == 0 and parts[2].size == 0

    def test_out_of_range_labels_rejected(self):
        with pytest.raises(ValueError):
            partition_parts(np.asarray([0, 5]), 3)

    @given(st.integers(1, 100), st.integers(1, 10), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_disjoint_and_exhaustive(self, n, s, seed):
        labels = random_partition(n, s, rng=seed)
        parts = partition_parts(labels, s)
        merged = np.concatenate(parts)
        assert np.array_equal(np.sort(merged), np.arange(n))


class TestRandomHalves:
    def test_sizes(self):
        a, b = random_halves(np.arange(11), np.random.default_rng(0))
        assert a.size == 5 and b.size == 6

    def test_disjoint_union(self):
        items = np.asarray([3, 7, 9, 11, 20])
        a, b = random_halves(items, np.random.default_rng(1))
        assert np.array_equal(np.sort(np.concatenate([a, b])), np.sort(items))

    def test_sorted_output(self):
        a, b = random_halves(np.arange(20), np.random.default_rng(2))
        assert (np.diff(a) > 0).all() and (np.diff(b) > 0).all()


class TestPartitionPlayers:
    def test_single_copy_partition(self):
        groups = partition_players(50, 5, 1, rng=0)
        assert len(groups) == 5
        merged = np.concatenate(groups)
        # copies=1: a partition (up to the empty-group top-up)
        assert merged.size >= 50

    def test_no_empty_groups(self):
        groups = partition_players(3, 10, 1, rng=1)
        assert all(g.size >= 1 for g in groups)

    def test_multiple_copies(self):
        groups = partition_players(20, 4, 2, rng=2)
        counts = np.zeros(20, dtype=int)
        for g in groups:
            counts[g] += 1
        assert (counts >= 2).sum() >= 18  # top-ups may add a third copy

    def test_copies_capped_at_groups(self):
        groups = partition_players(10, 2, 5, rng=3)
        # every player in every group
        assert all(g.size == 10 for g in groups)

    def test_members_unique_within_group(self):
        groups = partition_players(30, 3, 2, rng=4)
        for g in groups:
            assert np.unique(g).size == g.size

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            partition_players(0, 1, 1)
        with pytest.raises(ValueError):
            partition_players(1, 0, 1)
        with pytest.raises(ValueError):
            partition_players(1, 1, 0)


class TestSuccessPredicate:
    def test_identical_vectors_always_succeed(self):
        V = np.zeros((10, 8), dtype=np.int8)
        labels = random_partition(8, 4, rng=0)
        assert is_partition_successful(V, labels, 4)

    def test_all_distinct_fails(self):
        # 5 vectors pairwise differing inside one part, none agreeing.
        V = np.asarray(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 1]], dtype=np.int8
        )
        labels = np.zeros(3, dtype=int)  # single part containing all coords
        assert not is_partition_successful(V, labels, 1, frac=0.5)

    def test_empty_part_vacuous(self):
        V = np.asarray([[0, 1], [1, 0]], dtype=np.int8)
        labels = np.zeros(2, dtype=int)
        # part 1 empty; part 0 has both coords, rows disagree, frac=1 needs both
        assert not is_partition_successful(V, labels, 2, frac=1.0)
        same = np.zeros((2, 2), dtype=np.int8)
        assert is_partition_successful(same, labels, 2, frac=1.0)

    def test_frac_validation(self):
        V = np.zeros((2, 2), dtype=np.int8)
        with pytest.raises(ValueError):
            is_partition_successful(V, np.zeros(2, dtype=int), 1, frac=0)

    def test_empty_vectors_rejected(self):
        with pytest.raises(ValueError):
            is_partition_successful(np.empty((0, 2)), np.zeros(2, dtype=int), 1)

    def test_threshold_exact(self):
        # 5 rows, frac 0.4 -> need 2 agreeing rows per part.
        V = np.asarray([[0], [0], [1], [2], [3]], dtype=np.int8)
        labels = np.zeros(1, dtype=int)
        assert is_partition_successful(np.where(V > 1, 1, V), labels, 1, frac=0.4)
