"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn, spawn_many


class TestAsGenerator:
    def test_none_returns_generator(self):
        gen = as_generator(None)
        assert isinstance(gen, np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_distinct_seeds_differ(self):
        a = as_generator(1).integers(0, 2**31, size=10)
        b = as_generator(2).integers(0, 2**31, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        gen = as_generator(np.random.SeedSequence(5))
        assert isinstance(gen, np.random.Generator)

    def test_numpy_integer_seed(self):
        gen = as_generator(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            as_generator("seed")

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            as_generator(1.5)


class TestSpawn:
    def test_spawn_returns_new_generator(self):
        parent = as_generator(0)
        child = spawn(parent)
        assert isinstance(child, np.random.Generator)
        assert child is not parent

    def test_spawn_is_deterministic_given_parent_state(self):
        c1 = spawn(as_generator(9))
        c2 = spawn(as_generator(9))
        assert np.array_equal(c1.integers(0, 1000, 10), c2.integers(0, 1000, 10))

    def test_successive_spawns_are_independent(self):
        parent = as_generator(3)
        c1, c2 = spawn(parent), spawn(parent)
        assert not np.array_equal(c1.integers(0, 2**31, 20), c2.integers(0, 2**31, 20))

    def test_child_stream_differs_from_parent_usage(self):
        # The decoupling property the Zero Radius fix relies on: a child
        # stream must not replay the parent's permutation sequence.
        parent = as_generator(7)
        child = spawn(as_generator(7))
        assert not np.array_equal(parent.permutation(100), child.permutation(100))


class TestSpawnMany:
    def test_count(self):
        kids = spawn_many(as_generator(0), 5)
        assert len(kids) == 5

    def test_zero_count(self):
        assert spawn_many(as_generator(0), 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_many(as_generator(0), -1)

    def test_children_pairwise_independent(self):
        kids = spawn_many(as_generator(1), 4)
        draws = [k.integers(0, 2**31, 16) for k in kids]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])
