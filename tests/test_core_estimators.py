"""Tests for the Section 6 parameter estimators."""

import numpy as np
import pytest

from repro.core.estimators import alpha_for_budget, budget_for_alpha, empirical_d_of_alpha
from repro.core.params import Params
from repro.workloads.planted import planted_instance


class TestAlphaBudgetInversion:
    def test_roundtrip_consistency(self):
        n = 1024
        for alpha in (0.5, 0.25, 0.1):
            budget = budget_for_alpha(alpha, n)
            recovered = alpha_for_budget(budget, n)
            # inversion up to the ceil in the threshold
            assert recovered <= alpha * 1.1

    def test_bigger_budget_smaller_alpha(self):
        n = 1024
        assert alpha_for_budget(400, n) < alpha_for_budget(40, n)

    def test_clamped_to_one(self):
        assert alpha_for_budget(1, 1024) == 1.0

    def test_validity_floor(self):
        # alpha never drops below log n / n (the paper's validity bound).
        n = 256
        assert alpha_for_budget(10**9, n) >= np.log(n) / n

    def test_budget_formula_matches_params(self):
        p = Params.practical()
        assert budget_for_alpha(0.5, 512, p) == p.zr_leaf_threshold(512, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            alpha_for_budget(0, 100)
        with pytest.raises(ValueError):
            budget_for_alpha(0.0, 100)


class TestEmpiricalDOfAlpha:
    def test_planted_profile(self):
        inst = planted_instance(100, 100, 0.5, 0, rng=0)
        member = int(inst.main_community().members[0])
        profile = empirical_d_of_alpha(inst.prefs, member, [0.25, 0.5])
        # half the population is at distance 0 from a member
        assert profile[0.5] == 0
        assert profile[0.25] == 0

    def test_monotone_in_alpha(self):
        gen = np.random.default_rng(1)
        prefs = gen.integers(0, 2, (60, 80), dtype=np.int8)
        profile = empirical_d_of_alpha(prefs, 0, [0.1, 0.5, 1.0])
        assert profile[0.1] <= profile[0.5] <= profile[1.0]

    def test_alpha_one_is_eccentricity(self):
        gen = np.random.default_rng(2)
        prefs = gen.integers(0, 2, (20, 30), dtype=np.int8)
        from repro.metrics.hamming import hamming_to_each

        profile = empirical_d_of_alpha(prefs, 3, [1.0])
        assert profile[1.0] == int(hamming_to_each(prefs[3], prefs).max())

    def test_tiny_alpha_is_zero(self):
        gen = np.random.default_rng(3)
        prefs = gen.integers(0, 2, (20, 30), dtype=np.int8)
        # k = 1 -> the player itself
        assert empirical_d_of_alpha(prefs, 0, [0.01])[0.01] == 0

    def test_player_range_check(self):
        with pytest.raises(ValueError):
            empirical_d_of_alpha(np.zeros((4, 4), dtype=np.int8), 9, [0.5])
