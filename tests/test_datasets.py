"""The ``repro.datasets`` subsystem: parsers, binarizer, store, ingest.

Covers the ISSUE-9 acceptance points: hypothesis round-trip properties
(chunked write → streamed read equals one-shot binarization, across tail
widths and shard boundaries), crash-mid-ingest recovery (no manifest ⇒
clean rejection; stray partial shards invisible), and the bounded-memory
guarantee — ingesting a ≥100k-rating corpus must never allocate the
dense ``n × m`` matrix (asserted via tracemalloc, which sees NumPy's
allocations).
"""

from __future__ import annotations

import gzip
import json
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.binarize import ShardPacker, binarize_ratings_matrix, majority_from_counts
from repro.datasets.formats import iter_chunks, iter_edges, iter_ratings, sniff
from repro.datasets.ingest import ingest
from repro.datasets.store import MANIFEST_NAME, DatasetStore, DatasetWriter
from repro.metrics.bitpack import BitMatrix
from repro.utils.rng import as_generator


def _write_ratings_csv(path, rows, *, header=True, delim=","):
    lines = []
    if header:
        lines.append(delim.join(("user", "item", "rating")))
    for u, i, r in rows:
        lines.append(delim.join((str(u), str(i), f"{r:g}")))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


class TestFormats:
    def test_sniff_and_stream_csv(self, tmp_path):
        path = tmp_path / "r.csv"
        _write_ratings_csv(path, [(1, 10, 4.0), (2, 11, 1.5), (1, 11, 3.0)])
        fmt, delim, header = sniff(path)
        assert (fmt, delim, header) == ("ratings", ",", True)
        chunks = list(iter_ratings(path, chunk_rows=2))
        assert [len(c) for c in chunks] == [2, 1]
        assert chunks[0].users.tolist() == [1, 2]
        assert chunks[1].ratings.tolist() == [3.0]

    def test_movielens_double_colon_and_timestamp(self, tmp_path):
        path = tmp_path / "r.dat"
        path.write_text("1::10::4.0::964982703\n2::10::2.0::964982931\n", encoding="utf-8")
        fmt, chunks = iter_chunks(path)
        assert fmt == "ratings"
        (chunk,) = list(chunks)
        assert chunk.ratings.tolist() == [4.0, 2.0]

    def test_edges_with_comments_and_gzip(self, tmp_path):
        raw = "# FromNodeId\tToNodeId\n0\t4\n0\t5\n3\t4\n"
        path = tmp_path / "e.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(raw)
        assert sniff(path)[0] == "edges"
        (chunk,) = list(iter_edges(path))
        assert chunk.users.tolist() == [0, 0, 3]
        assert chunk.ratings.tolist() == [1.0, 1.0, 1.0]

    def test_bad_row_names_line(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("1,10,4.0\n1,oops,3\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r":2"):
            list(iter_ratings(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("# nothing here\n\n", encoding="utf-8")
        with pytest.raises(ValueError, match="no data lines"):
            sniff(path)

    def test_format_mismatch_rejected(self, tmp_path):
        path = tmp_path / "e.tsv"
        path.write_text("1\t2\n3\t4\n", encoding="utf-8")
        with pytest.raises(ValueError, match="edge list"):
            list(iter_ratings(path))


class TestBinarize:
    @given(
        n=st.integers(1, 40),
        m=st.integers(1, 40),
        missing=st.sampled_from(["zero", "one", "majority"]),
        block_rows=st.integers(1, 17),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_dense_reference(self, n, m, missing, block_rows, seed):
        from repro.workloads.ratings import _binarize_dense_reference

        rng = as_generator(seed)
        ratings = rng.uniform(0.0, 5.0, size=(n, m))
        ratings[rng.random((n, m)) < 0.4] = np.nan
        got = binarize_ratings_matrix(
            ratings, 2.5, missing=missing, block_rows=block_rows
        )
        want = _binarize_dense_reference(ratings, 2.5, missing=missing, missing_marker=np.nan)
        np.testing.assert_array_equal(got.unpack(), want)

    def test_contradictory_duplicates_resolve_to_zero(self):
        packer = ShardPacker(1, 8)
        packer.scatter(
            np.array([0, 0]), np.array([3, 3]), np.array([1, 0], dtype=np.uint8)
        )
        assert packer.finish()[0, 0] == 0

    def test_majority_counts_rule(self):
        ones = np.array([2, 1, 0, 3])
        known = np.array([3, 2, 0, 3])
        np.testing.assert_array_equal(
            majority_from_counts(ones, known), np.array([1, 0, 0, 1], dtype=np.uint8)
        )


class TestStoreRoundTrip:
    @given(
        n=st.integers(1, 60),
        m=st.integers(1, 40),
        shard_rows=st.integers(1, 19),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_chunked_write_streamed_read(self, tmp_path_factory, n, m, shard_rows, seed):
        tmp = tmp_path_factory.mktemp("store")
        rng = as_generator(seed)
        dense = (rng.random((n, m)) < 0.5).astype(np.int8)
        bm = BitMatrix(dense)
        writer = DatasetWriter(tmp / "ds", n=n, m=m, name="prop")
        for start in range(0, n, shard_rows):
            writer.write_shard(bm.packed[start : start + shard_rows])
        writer.write_vocab(np.arange(n), np.arange(m))
        writer.commit()
        store = DatasetStore.open(tmp / "ds")
        assert store.bitmatrix() == bm
        assert store.bitmatrix(mmap=True) == bm
        streamed = np.concatenate([block for _, block in store.iter_blocks()])
        np.testing.assert_array_equal(streamed, bm.packed)

    def test_tail_width_boundaries(self, tmp_path):
        # m % 8 in {0, 1, 7} and shard_rows dividing / not dividing n.
        for m in (8, 9, 15):
            for shard_rows in (4, 5):
                dense = (np.arange(12 * m).reshape(12, m) % 3 == 0).astype(np.int8)
                bm = BitMatrix(dense)
                out = tmp_path / f"ds-{m}-{shard_rows}"
                writer = DatasetWriter(out, n=12, m=m, name="tail")
                for start in range(0, 12, shard_rows):
                    writer.write_shard(bm.packed[start : start + shard_rows])
                writer.commit()
                np.testing.assert_array_equal(
                    DatasetStore.open(out).bitmatrix().unpack(), dense
                )

    def test_incomplete_coverage_refuses_commit(self, tmp_path):
        writer = DatasetWriter(tmp_path / "ds", n=10, m=8, name="short")
        writer.write_shard(np.zeros((4, 1), dtype=np.uint8))
        with pytest.raises(ValueError, match="refusing to commit"):
            writer.commit()

    def test_ingest_equals_oneshot_binarize(self, tmp_path):
        # Streamed ingest must equal binarizing the densified ratings in
        # one shot, for every imputation policy.
        rng = as_generator(5)
        n, m, k = 37, 23, 300
        cells = rng.choice(n * m, size=k, replace=False)
        ratings = rng.uniform(0.0, 5.0, size=k)
        path = tmp_path / "r.csv"
        _write_ratings_csv(
            path, list(zip((cells // m).tolist(), (cells % m).tolist(), ratings.tolist()))
        )
        dense = np.full((n, m), np.nan)
        dense[cells // m, cells % m] = ratings
        for missing in ("zero", "one", "majority"):
            res = ingest(
                path, tmp_path / f"ds-{missing}", threshold=2.5,
                missing=missing, shard_rows=7, chunk_rows=41,
            )
            store = DatasetStore.open(res.path)
            uids, iids = store.vocab()
            # Rows/cols are in first-appearance order; undo the permutation.
            got = store.bitmatrix().unpack()[np.argsort(uids)][:, np.argsort(iids)]
            want = binarize_ratings_matrix(
                dense[np.ix_(np.sort(np.unique(cells // m)), np.sort(np.unique(cells % m)))],
                2.5,
                missing=missing,
            ).unpack()
            np.testing.assert_array_equal(got, want, err_msg=missing)


class TestCrashRecovery:
    def test_missing_manifest_rejected(self, tmp_path):
        out = tmp_path / "ds"
        writer = DatasetWriter(out, n=4, m=8, name="crash")
        writer.write_shard(np.zeros((4, 1), dtype=np.uint8))
        # No commit — simulates a crash mid-ingest.
        with pytest.raises(ValueError, match="no manifest.json"):
            DatasetStore.open(out)

    def test_partial_shards_ignored(self, tmp_path):
        rng = as_generator(3)
        dense = (rng.random((8, 16)) < 0.5).astype(np.int8)
        bm = BitMatrix(dense)
        out = tmp_path / "ds"
        writer = DatasetWriter(out, n=8, m=16, name="ok")
        writer.write_shard(bm.packed)
        writer.commit()
        # A dead writer's leftovers: stray shard + spill files.
        np.savez(out / "shard-9999.npz", packed=np.ones((2, 2), dtype=np.uint8))
        (out / ".spill").mkdir()
        (out / ".spill" / "spill-0000.bin").write_bytes(b"garbage")
        store = DatasetStore.open(out)
        assert store.bitmatrix() == bm
        assert len(store.manifest["shards"]) == 1

    def test_corrupt_manifest_kind_rejected(self, tmp_path):
        out = tmp_path / "ds"
        writer = DatasetWriter(out, n=1, m=8, name="x")
        writer.write_shard(np.zeros((1, 1), dtype=np.uint8))
        writer.commit()
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        manifest["kind"] = "something-else"
        (out / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="not a dataset manifest"):
            DatasetStore.open(out)

    def test_double_ingest_rejected(self, tmp_path):
        path = tmp_path / "r.csv"
        _write_ratings_csv(path, [(1, 1, 4.0), (2, 1, 1.0)])
        ingest(path, tmp_path / "ds", threshold=2.5)
        with pytest.raises(ValueError, match="already holds"):
            ingest(path, tmp_path / "ds", threshold=2.5)


class TestFromPackedAdopt:
    def test_copy_false_adopts_readonly(self):
        dense = (np.arange(24).reshape(4, 6) % 2).astype(np.int8)
        packed = BitMatrix(dense).packed.copy()
        packed.setflags(write=False)
        bm = BitMatrix.from_packed(packed, 6, copy=False)
        assert np.shares_memory(bm.packed, packed)
        np.testing.assert_array_equal(bm.unpack(), dense)

    def test_copy_false_rejects_dirty_tail(self):
        packed = np.full((2, 1), 0xFF, dtype=np.uint8)
        with pytest.raises(ValueError, match="dirty"):
            BitMatrix.from_packed(packed, 6, copy=False)
        # copy=True re-zeroes instead.
        bm = BitMatrix.from_packed(packed, 6)
        assert bm.unpack().sum() == 12


class TestBoundedMemory:
    def test_100k_ingest_never_densifies(self, tmp_path):
        # ≥100k ratings over 2000×1500: the dense int8 matrix would be
        # 3.0 MB (float64: 24 MB). The whole ETL peak must stay well
        # under the dense size; tracemalloc sees NumPy's allocations.
        from repro.datasets.registry import get

        source = get("synth-100k").materialize(tmp_path)
        n, m = 2000, 1500
        dense_bytes = n * m  # int8 dense matrix
        tracemalloc.start()
        tracemalloc.reset_peak()
        result = ingest(
            source, tmp_path / "ds", threshold=3.0, missing="majority",
            shard_rows=256, chunk_rows=8192, mmap_mirror=True,
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert result.rows_read == 100_000
        assert (result.n, result.m) == (n, m)
        assert peak < dense_bytes, (
            f"ETL peak {peak} bytes >= dense n*m {dense_bytes} — "
            "something materialised the full matrix"
        )
        store = DatasetStore.open(tmp_path / "ds")
        bm = store.bitmatrix(mmap=True)
        assert bm.shape == (n, m)
        assert store.info()["stats"]["rows_read"] == 100_000


class TestRegistryAndEvaluate:
    def test_registry_fixtures_ingest(self, tmp_path):
        from repro.datasets.registry import get, names

        assert {"mini-ratings", "mini-edges", "synth-10k", "synth-100k"} <= set(names())
        for name in ("mini-ratings", "mini-edges"):
            spec = get(name)
            res = ingest(
                spec.materialize(tmp_path), tmp_path / name, threshold=spec.threshold
            )
            assert res.n > 0 and res.m > 0
            assert res.format == spec.fmt

    def test_unknown_registry_name(self):
        from repro.datasets.registry import get

        with pytest.raises(ValueError, match="registered"):
            get("no-such-corpus")

    def test_evaluate_panel_records_all_algorithms(self, tmp_path):
        from repro.datasets.evaluate import evaluate_dataset
        from repro.datasets.registry import get

        spec = get("mini-ratings")
        ingest(spec.materialize(tmp_path), tmp_path / "ds", threshold=spec.threshold)
        evaluation = evaluate_dataset(tmp_path / "ds", rng=0)
        names = [s.algorithm for s in evaluation.scores]
        assert names == [
            "select (ours)", "rselect (ours)", "anytime (ours)",
            "solo", "majority", "knn", "svd",
        ]
        assert evaluation.diameter >= 0 and 0 < evaluation.alpha <= 1
        assert all(s.stretch >= 0 for s in evaluation.scores)
        payload = evaluation.to_dict()
        assert len(payload["scores"]) == 7
        assert "stretch" in evaluation.render()


class TestServeIntegration:
    def test_loadgen_dataset_serves_ingested_instance(self, tmp_path):
        from repro.datasets.registry import get
        from repro.serve.loadgen import LoadgenConfig, run_loadgen

        spec = get("mini-ratings")
        ingest(spec.materialize(tmp_path), tmp_path / "ds", threshold=spec.threshold)
        report = run_loadgen(
            LoadgenConfig(dataset=str(tmp_path / "ds"), seed=3, max_phases=1, d_max=2)
        )
        assert report.requests > 0
        assert report.sessions_complete + report.sessions_drained == 64
        assert "dataset" in report.render()

    def test_publish_bitmatrix_shares_packed_words(self):
        from repro.parallel.shared import SharedInstanceStore

        dense = (np.arange(64).reshape(8, 8) % 3 == 0).astype(np.int8)
        bm = BitMatrix(dense)
        with SharedInstanceStore() as shared:
            handle = shared.publish(bm)
            attached = handle.bitmatrix()
            assert attached == bm
