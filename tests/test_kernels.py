"""Property tests pinning every kernel backend bitwise to the reference.

The dispatch layer (:mod:`repro.metrics.kernels`) promises that the
compiled backend is *observably invisible*: for any input, every backend
returns byte-identical results.  The hypothesis suites here are that
contract's referee — each kernel is driven across both backends (the
compiled one is skipped gracefully on hosts without the extension) and
against a scalar/dense model, over the shapes that historically bite
bit-packed code: tail words (widths straddling byte and 64-bit word
boundaries), duplicate probe coordinates, empty batches, single-row and
single-column matrices.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import kernels
from repro.metrics.bitpack import _as_words
from repro.metrics.kernels import reference
from repro.utils.validation import WILDCARD

try:
    from repro.metrics.kernels import compiled
except ImportError:  # pragma: no cover - host without the built extension
    compiled = None

#: Both backends; the compiled leg vanishes (with a visible skip) when
#: the extension is not built rather than silently testing NumPy twice.
BACKENDS = [pytest.param(reference, id="numpy")] + (
    [pytest.param(compiled, id="compiled")]
    if compiled is not None
    else [pytest.param(None, id="compiled", marks=pytest.mark.skip("_ckernels not built"))]
)

#: Widths deliberately straddle byte (8) and word (64) boundaries so the
#: zero-padded tail bytes/words of the packed rows are always exercised.
binary_matrix = arrays(
    np.int8,
    st.tuples(st.integers(1, 12), st.integers(1, 80)),
    elements=st.integers(0, 1),
)

wide_binary_matrix = arrays(
    np.int8,
    st.tuples(st.integers(1, 6), st.sampled_from([1, 7, 8, 9, 63, 64, 65, 130])),
    elements=st.integers(0, 1),
)


@st.composite
def matrix_and_probes(draw):
    """A dense 0/1 matrix plus a scattered (rows, cols) probe batch.

    Batches include the empty batch (k=0) and, by construction of the
    independent draws, duplicate coordinates.
    """
    dense = draw(st.one_of(binary_matrix, wide_binary_matrix))
    n, width = dense.shape
    k = draw(st.integers(0, 64))
    rows = draw(arrays(np.intp, k, elements=st.integers(0, n - 1)))
    cols = draw(arrays(np.intp, k, elements=st.integers(0, width - 1)))
    return dense, rows, cols


def _packed(dense: np.ndarray) -> np.ndarray:
    return np.packbits(dense, axis=1)


# ------------------------------------------------------------- extract


@pytest.mark.parametrize("backend", BACKENDS)
class TestExtractBits:
    @given(matrix_and_probes())
    @settings(max_examples=60)
    def test_matches_dense_fancy_indexing(self, backend, case):
        dense, rows, cols = case
        got = backend.extract_bits(_packed(dense), rows, cols)
        expected = dense[rows, cols]
        assert got.dtype == np.int8
        assert np.array_equal(got, expected)

    @given(binary_matrix)
    @settings(max_examples=20)
    def test_broadcast_like_advanced_indexing(self, backend, dense):
        n, width = dense.shape
        rows = np.arange(n, dtype=np.intp)[:, None]
        cols = np.arange(width, dtype=np.intp)[None, :]
        got = backend.extract_bits(_packed(dense), rows, cols)
        assert np.array_equal(got, dense)

    def test_single_row_and_single_column(self, backend):
        row = np.asarray([[1, 0, 1, 1, 0, 0, 1, 0, 1]], dtype=np.int8)
        cols = np.asarray([0, 8, 2, 2], dtype=np.intp)
        got = backend.extract_bits(_packed(row), np.zeros(4, dtype=np.intp), cols)
        assert got.tolist() == [1, 1, 1, 1]
        col = np.asarray([[0], [1], [1], [0], [1]], dtype=np.int8)
        rows = np.asarray([4, 0, 1, 1], dtype=np.intp)
        got = backend.extract_bits(_packed(col), rows, np.zeros(4, dtype=np.intp))
        assert got.tolist() == [1, 0, 1, 1]


@pytest.mark.parametrize("backend", BACKENDS)
class TestFusedExtractPost:
    @given(matrix_and_probes())
    @settings(max_examples=60)
    def test_matches_scalar_model(self, backend, case):
        dense, rows, cols = case
        n, width = dense.shape
        sink = np.full((n, width), WILDCARD, dtype=np.int8)
        counts = np.zeros(n, dtype=np.int64)
        values = backend.fused_extract_post(_packed(dense), sink, rows, cols, counts)

        model_sink = np.full((n, width), WILDCARD, dtype=np.int8)
        model_counts = np.zeros(n, dtype=np.int64)
        for r, c in zip(rows.tolist(), cols.tolist()):
            model_sink[r, c] = dense[r, c]  # later duplicates win
            model_counts[r] += 1
        assert np.array_equal(values, dense[rows, cols])
        assert np.array_equal(sink, model_sink)
        assert np.array_equal(counts, model_counts)

    @given(matrix_and_probes())
    @settings(max_examples=30)
    def test_counts_none_leaves_accounting_alone(self, backend, case):
        dense, rows, cols = case
        sink = np.full(dense.shape, WILDCARD, dtype=np.int8)
        values = backend.fused_extract_post(_packed(dense), sink, rows, cols, None)
        assert np.array_equal(values, dense[rows, cols])
        assert np.array_equal(sink != WILDCARD, _scatter_mask(dense.shape, rows, cols))


def _scatter_mask(shape, rows, cols):
    mask = np.zeros(shape, dtype=bool)
    mask[rows, cols] = True
    return mask


# ---------------------------------------------------- diameter/pairwise


@pytest.mark.parametrize("backend", BACKENDS)
class TestDistanceKernels:
    @given(st.one_of(binary_matrix, wide_binary_matrix))
    @settings(max_examples=40)
    def test_diameter_matches_dense(self, backend, dense):
        words = _as_words(_packed(dense))
        expected = int(
            (dense[:, None, :] != dense[None, :, :]).sum(axis=2).max()
        )
        assert backend.diameter_words(words) == expected

    @given(st.one_of(binary_matrix, wide_binary_matrix))
    @settings(max_examples=40)
    def test_pairwise_matches_dense(self, backend, dense):
        words = _as_words(_packed(dense))
        expected = (dense[:, None, :] != dense[None, :, :]).sum(axis=2)
        got = backend.pairwise_hamming_words(words)
        assert got.dtype == np.int64
        assert np.array_equal(got, expected)

    def test_single_row_is_degenerate_zero(self, backend):
        words = _as_words(_packed(np.ones((1, 70), dtype=np.int8)))
        assert backend.diameter_words(words) == 0
        assert backend.pairwise_hamming_words(words).tolist() == [[0]]


# ------------------------------------------------------ candidate scans


@st.composite
def scan_case(draw):
    k = draw(st.integers(1, 48))
    col = draw(arrays(np.int16, k, elements=st.sampled_from([WILDCARD, 0, 1])))
    value = draw(st.sampled_from([0, 1]))
    bound = draw(st.integers(0, 4))
    disagreements = draw(arrays(np.int64, k, elements=st.integers(0, 5)))
    alive = draw(arrays(np.bool_, k))
    return col, value, bound, disagreements, alive


@pytest.mark.parametrize("backend", BACKENDS)
class TestScanColumn:
    @given(scan_case())
    @settings(max_examples=60)
    def test_matches_scalar_model(self, backend, case):
        col, value, bound, disagreements, alive = case
        dis = disagreements.copy()
        liv = alive.copy()
        eliminated = backend.scan_column(col, value, WILDCARD, bound, dis, liv)

        model_dis = disagreements.copy()
        model_liv = alive.copy()
        model_eliminated = 0
        for i in range(col.size):
            if col[i] != WILDCARD and col[i] != value:
                model_dis[i] += 1
            if model_liv[i] and model_dis[i] > bound:
                model_liv[i] = False
                model_eliminated += 1
        assert eliminated == model_eliminated
        assert np.array_equal(dis, model_dis)
        assert np.array_equal(liv, model_liv)


@pytest.mark.parametrize("backend", BACKENDS)
class TestPairAgreements:
    @given(
        st.integers(1, 48).flatmap(
            lambda k: st.tuples(
                arrays(np.int16, k, elements=st.sampled_from([WILDCARD, 0, 1])),
                arrays(np.int16, k, elements=st.sampled_from([WILDCARD, 0, 1])),
                arrays(np.int16, k, elements=st.integers(0, 1)),
            )
        )
    )
    @settings(max_examples=60)
    def test_first_match_wins(self, backend, case):
        col_a, col_b, values = case
        agree_a, agree_b = backend.pair_agreements(col_a, col_b, values)
        model_a = model_b = 0
        for va, vb, v in zip(col_a.tolist(), col_b.tolist(), values.tolist()):
            if va == v:
                model_a += 1
            elif vb == v:
                model_b += 1
        assert (agree_a, agree_b) == (model_a, model_b)

    def test_wide_dtypes_take_the_generic_path(self, backend):
        # int64 operands exercise the compiled wrapper's delegation (it
        # never narrows silently) and the reference's dtype-agnostic path.
        col_a = np.asarray([10**9, 2, WILDCARD], dtype=np.int64)
        col_b = np.asarray([2, 10**9, 10**9], dtype=np.int64)
        values = np.asarray([10**9, 10**9, 10**9], dtype=np.int64)
        assert backend.pair_agreements(col_a, col_b, values) == (1, 2)


# ------------------------------------------- dispatch layer + probe_many


class TestDispatchLayer:
    def test_backend_identity(self):
        assert kernels.kernel_backend() in ("numpy", "compiled")
        assert kernels.backend_reason()
        table = kernels.dispatch_table()
        assert tuple(table) == kernels.KERNEL_NAMES
        assert set(table.values()) == {kernels.kernel_backend()}

    def test_numpy_kernels_forces_reference(self):
        with kernels.numpy_kernels():
            assert kernels.kernel_backend() == "numpy"
            assert not kernels.compiled_kernels_enabled()
            assert set(kernels.dispatch_table().values()) == {"numpy"}
            info = kernels.kernel_info()
        assert info["backend"] == "numpy"
        assert set(info["env"]) == {"REPRO_KERNEL_BACKEND", "REPRO_FORCE_PY_KERNELS"}
        assert kernels.kernel_backend() in ("numpy", "compiled")

    def test_kernel_info_is_json_ready(self):
        import json

        json.dumps(kernels.kernel_info())


@pytest.mark.skipif(compiled is None, reason="_ckernels not built")
class TestProbeManyAcrossBackends:
    """The oracle's batched fast path is backend-invariant end to end."""

    @given(st.integers(0, 2**31 - 1), st.integers(0, 400))
    @settings(max_examples=15, deadline=None)
    def test_values_counts_and_grades_match(self, seed, k):
        from repro.billboard.oracle import ProbeOracle
        from repro.workloads.registry import make_instance

        inst = make_instance("planted", 24, 37, 0.5, 2, rng=seed % 997)
        rng = np.random.default_rng(seed)
        players = rng.integers(0, 24, size=k).astype(np.intp)
        objects = rng.integers(0, 37, size=k).astype(np.intp)

        active = ProbeOracle(inst)
        got = active.probe_many(players, objects)
        with kernels.numpy_kernels():
            ref_oracle = ProbeOracle(inst)
            expected = ref_oracle.probe_many(players, objects)

        assert np.array_equal(got, expected)
        assert np.array_equal(active.stats().per_player, ref_oracle.stats().per_player)
        assert np.array_equal(
            active.billboard.revealed_mask(), ref_oracle.billboard.revealed_mask()
        )
