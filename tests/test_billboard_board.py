"""Tests for the shared billboard."""

import numpy as np
import pytest

from repro.billboard.board import Billboard
from repro.utils.validation import WILDCARD


class TestConstruction:
    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            Billboard(0, 5)
        with pytest.raises(ValueError):
            Billboard(5, 0)

    def test_starts_unrevealed(self):
        b = Billboard(3, 4)
        assert b.n_revealed == 0
        assert not b.is_revealed(0, 0)


class TestGrades:
    def test_post_and_read(self):
        b = Billboard(3, 4)
        b.post_grades(np.asarray([1]), np.asarray([2]), np.asarray([1], dtype=np.int8))
        assert b.is_revealed(1, 2)
        assert b.grade(1, 2) == 1
        assert b.n_revealed == 1

    def test_hidden_grade_raises(self):
        b = Billboard(2, 2)
        with pytest.raises(KeyError):
            b.grade(0, 0)

    def test_revealed_values_hidden_marker(self):
        b = Billboard(2, 2)
        vals = b.revealed_values()
        assert (vals == WILDCARD).all()

    def test_masks_are_read_only(self):
        b = Billboard(2, 2)
        with pytest.raises(ValueError):
            b.revealed_mask()[0, 0] = True
        with pytest.raises(ValueError):
            b.revealed_values()[0, 0] = 1

    def test_batch_post(self):
        b = Billboard(4, 4)
        players = np.asarray([0, 1, 2])
        objs = np.asarray([3, 2, 1])
        vals = np.asarray([1, 0, 1], dtype=np.int8)
        b.post_grades(players, objs, vals)
        assert b.grade(0, 3) == 1
        assert b.grade(1, 2) == 0
        assert b.grade(2, 1) == 1


class TestChannels:
    def test_post_read_roundtrip(self):
        b = Billboard(2, 3)
        m = np.asarray([[0, 1, WILDCARD]], dtype=np.int8)
        b.post_vectors("sr/0", m)
        out = b.read_vectors("sr/0")
        assert np.array_equal(out, m)

    def test_read_returns_copy(self):
        b = Billboard(2, 3)
        b.post_vectors("c", np.zeros((1, 3)))
        out = b.read_vectors("c")
        out[0, 0] = 9
        assert b.read_vectors("c")[0, 0] == 0

    def test_post_copies_input(self):
        b = Billboard(2, 3)
        m = np.zeros((1, 3), dtype=np.int16)
        b.post_vectors("c", m)
        m[0, 0] = 9
        assert b.read_vectors("c")[0, 0] == 0

    def test_missing_channel(self):
        b = Billboard(2, 2)
        with pytest.raises(KeyError):
            b.read_vectors("nope")

    def test_has_and_list_channels(self):
        b = Billboard(2, 2)
        assert not b.has_channel("x")
        b.post_vectors("x", np.zeros((1, 2)))
        b.post_vectors("a", np.zeros((1, 2)))
        assert b.has_channel("x")
        assert b.channels() == ["a", "x"]

    def test_rejects_1d_vectors(self):
        b = Billboard(2, 2)
        with pytest.raises(ValueError):
            b.post_vectors("c", np.zeros(3))

    def test_overwrite_allowed(self):
        b = Billboard(2, 2)
        b.post_vectors("c", np.zeros((1, 2)))
        b.post_vectors("c", np.ones((2, 2)))
        assert b.read_vectors("c").shape == (2, 2)
