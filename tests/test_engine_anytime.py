"""Tests for the distributed §6 anytime loop."""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.main import anytime_find_preferences
from repro.engine.anytime_player import run_anytime_engine
from repro.metrics.evaluation import evaluate
from repro.workloads.planted import planted_instance


class TestUnbudgeted:
    def test_bitwise_equal_to_global(self):
        inst = planted_instance(48, 48, 0.5, 0, rng=3)
        o1 = ProbeOracle(inst)
        g = anytime_find_preferences(o1, rng=55, max_phases=2, d_max=4)
        o2 = ProbeOracle(inst)
        e, meta = run_anytime_engine(o2, rng=55, max_phases=2, d_max=4)
        assert np.array_equal(g.outputs, e)
        assert np.array_equal(o1.stats().per_player, o2.stats().per_player)
        assert meta["phases"] == g.meta["phases"]
        assert not meta["budget_exhausted"]

    def test_quality(self):
        inst = planted_instance(48, 48, 0.5, 0, rng=7)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out, meta = run_anytime_engine(oracle, rng=8, max_phases=2, d_max=4)
        rep = evaluate(out, inst.prefs, comm.members)
        assert rep.discrepancy <= 4


class TestBudgeted:
    def test_exhaustion_flagged_and_graceful(self):
        inst = planted_instance(48, 48, 0.5, 0, rng=9)
        oracle = ProbeOracle(inst, budget=120)
        out, meta = run_anytime_engine(oracle, rng=10, d_max=4)
        assert meta["budget_exhausted"]
        assert out.shape == (48, 48)

    def test_completed_phase_preserved_across_abort(self):
        # Budget large enough for phase 1 but not phase 2: the returned
        # output is phase 1's, which matches the global run bitwise
        # (phase 1's probes are identical; phase 2's partial probes do
        # not touch `best`).
        inst = planted_instance(48, 48, 0.5, 0, rng=11)
        o_probe = ProbeOracle(inst)
        full = anytime_find_preferences(o_probe, rng=12, max_phases=1, d_max=4)
        phase1_rounds = full.rounds
        budget = phase1_rounds + 20  # enough for phase 1, not phase 2

        o1 = ProbeOracle(inst, budget=budget)
        g = anytime_find_preferences(o1, rng=12, d_max=4)
        o2 = ProbeOracle(inst, budget=budget)
        e, meta = run_anytime_engine(o2, rng=12, d_max=4)
        if g.meta["phases"] and meta["phases"]:
            assert np.array_equal(g.outputs, e)

    def test_zero_phase_fallback_uses_revealed_entries(self):
        # With no phase completed, outputs fall back to each player's
        # revealed entries.  The engine's lockstep interleaving reveals a
        # different partial set than the global sequential run before the
        # budget trips, so outputs legitimately differ — but both must be
        # consistent with their own billboards.
        inst = planted_instance(48, 48, 0.5, 0, rng=13)
        oracle = ProbeOracle(inst, budget=10)
        out, meta = run_anytime_engine(oracle, rng=14, d_max=4)
        assert meta["phases"] == []
        mask = oracle.billboard.revealed_mask()
        assert (out[mask] == inst.prefs[mask]).all()
        assert (out[~np.asarray(mask)] == 0).all()
