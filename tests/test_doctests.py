"""Run the library's docstring examples as tests."""

import doctest
import importlib

import numpy as np
import pytest

# importlib.import_module is required: some module names are shadowed by
# same-named re-exported functions on their parent package (e.g.
# ``repro.metrics.hamming`` the attribute is the function).
MODULE_NAMES = [
    "repro.metrics.hamming",
    "repro.metrics.tilde",
    "repro.analysis.bounds",
    "repro.utils.tables",
]
MODULES = [importlib.import_module(name) for name in MODULE_NAMES]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(
        module,
        extraglobs={"np": np},
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.failed == 0
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
