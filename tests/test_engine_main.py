"""Tests for the distributed Fig. 1 dispatcher and §6 unknown-D programs."""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.main import find_preferences, find_preferences_unknown_d
from repro.core.params import Params
from repro.engine import (
    MainCoins,
    UnknownDCoins,
    run_find_preferences_engine,
    run_find_preferences_unknown_d_engine,
)
from repro.metrics.evaluation import evaluate
from repro.workloads.planted import planted_instance


class TestMainCoins:
    def test_branch_dispatch(self):
        assert MainCoins.draw(64, 64, 0.5, 0, rng=0).branch == "zero_radius"
        assert MainCoins.draw(64, 64, 0.5, 2, rng=0).branch == "small_radius"
        assert MainCoins.draw(64, 64, 0.5, 32, rng=0).branch == "large_radius"

    def test_branch_threshold_uses_params(self):
        p = Params.practical().with_overrides(lr_small_d_c=0.1)
        assert MainCoins.draw(64, 64, 0.5, 3, params=p, rng=0).branch == "large_radius"

    def test_validation(self):
        with pytest.raises(ValueError):
            MainCoins.draw(8, 8, 0.0, 0)
        with pytest.raises(ValueError):
            MainCoins.draw(8, 8, 0.5, -1)


class TestDispatcherEquivalence:
    @pytest.mark.parametrize("D", [0, 2, 24])
    def test_bitwise_all_branches(self, D):
        inst = planted_instance(64, 64, 0.5, D, rng=D + 3)
        o1 = ProbeOracle(inst)
        g = find_preferences(o1, 0.5, D, rng=99)
        o2 = ProbeOracle(inst)
        e, result = run_find_preferences_engine(o2, 0.5, D, rng=99)
        assert np.array_equal(g.outputs, e)
        assert np.array_equal(o1.stats().per_player, o2.stats().per_player)
        assert result.probe_rounds == g.rounds


class TestUnknownDEquivalence:
    def test_bitwise(self):
        inst = planted_instance(48, 48, 0.5, 2, rng=8)
        o1 = ProbeOracle(inst)
        g = find_preferences_unknown_d(o1, 0.5, rng=77, d_max=4)
        o2 = ProbeOracle(inst)
        e, result = run_find_preferences_unknown_d_engine(o2, 0.5, rng=77, d_max=4)
        assert np.array_equal(g.outputs, e)
        assert np.array_equal(o1.stats().per_player, o2.stats().per_player)
        assert result.probe_rounds == g.rounds

    def test_coins_schedule_matches_global(self):
        coins = UnknownDCoins.draw(32, 32, 0.5, rng=5, d_max=8)
        assert coins.schedule == [0, 1, 2, 4, 8]
        assert len(coins.versions) == 5
        assert len(coins.player_rngs) == 32

    def test_quality(self):
        inst = planted_instance(48, 48, 0.5, 2, rng=21)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out, _ = run_find_preferences_unknown_d_engine(oracle, 0.5, rng=22, d_max=4)
        rep = evaluate(out, inst.prefs, comm.members, diam=comm.diameter)
        assert rep.discrepancy <= 5 * max(comm.diameter, 1)
