"""Seeded statistical tests: empirical failure rates vs theory.

These run many independent trials (fixed base seeds, so deterministic)
and compare empirical rates against the concentration analysis — the
"w.h.p." spine of every theorem.  Thresholds are deliberately loose;
the goal is catching *systematic* regressions (a broken vote threshold,
a mis-scaled constant), not re-proving the bounds.
"""

import numpy as np
import pytest

from repro.analysis.concentration import zero_radius_vote_failure_bound
from repro.billboard.oracle import ProbeOracle
from repro.core.main import find_preferences
from repro.core.params import Params
from repro.core.rselect import rselect
from repro.metrics.evaluation import evaluate
from repro.workloads.planted import planted_instance


class TestZeroRadiusReliability:
    TRIALS = 30

    def _failure_rate(self, n, alpha, params):
        fails = 0
        for seed in range(self.TRIALS):
            inst = planted_instance(n, n, alpha, 0, rng=1000 + seed)
            oracle = ProbeOracle(inst)
            res = find_preferences(oracle, alpha, 0, params=params, rng=2000 + seed)
            rep = evaluate(res.outputs, inst.prefs, inst.main_community().members)
            fails += rep.discrepancy > 0
        return fails / self.TRIALS

    def test_practical_constants_reliable_on_planted(self):
        rate = self._failure_rate(256, 0.25, Params.practical())
        assert rate <= 0.1

    def test_robust_constants_more_reliable_than_tiny_leaf(self):
        tiny = self._failure_rate(128, 0.25, Params.practical().with_overrides(zr_leaf_c=0.5))
        robust = self._failure_rate(128, 0.25, Params.robust())
        assert robust <= tiny

    def test_reliability_improves_with_n(self):
        # The w.h.p. guarantee strengthens with n; allow equality (both
        # may be 0 at these sizes).
        small = self._failure_rate(64, 0.25, Params.practical())
        large = self._failure_rate(512, 0.25, Params.practical())
        assert large <= small + 0.05


class TestChernoffPredictionDirection:
    def test_vote_bound_orders_constants(self):
        # The analytic per-vote bound must order the empirical rates of
        # the leaf-constant ablation (X1's premise).
        bounds = [zero_radius_vote_failure_bound(c, 0.25, 512) for c in (1.0, 2.0, 5.0)]
        assert bounds[0] > bounds[1] > bounds[2]


class TestRSelectReliability:
    def test_tournament_failure_rate(self):
        # Pr[far decoy survives] decays with the per-pair sample count;
        # at c*log2(1024)=20 probes per pair the empirical rate over 50
        # trials should be 0 for decoys at 10x the true distance.
        gen = np.random.default_rng(5)
        failures = 0
        for _ in range(50):
            hidden = gen.integers(0, 2, 300, dtype=np.int8)
            near = hidden.copy()
            near[gen.choice(300, 10, replace=False)] ^= 1
            far = hidden.copy()
            far[gen.choice(300, 120, replace=False)] ^= 1
            cands = np.stack([far, near])

            def probe(j):
                return int(hidden[j])

            out = rselect(cands, probe, 1024, rng=gen)
            if out.index == 0:
                failures += 1
        assert failures == 0
