"""Guards on the stable ``repro.api`` surface.

Three layers of pinning:

* **name snapshot** — ``repro.api.__all__`` must equal the golden list
  below.  Adding a name is a conscious act (update the golden and
  ``docs/api.md``); removing or renaming one is a breaking change.
* **signature snapshot** — ``inspect.signature`` strings of the
  callable surface.  Any parameter rename, reorder, default change, or
  annotation change fails here before it reaches a caller.
* **behavioural contracts** — the ``RunResult.meta`` vocabulary
  (:func:`repro.core.result.validate_meta`) holds on real runs, every
  rng-accepting entry point takes ``int | Generator | None``, and moved
  names keep working through their deprecation shims.
"""

import inspect
import warnings

import numpy as np
import pytest

from repro import api
from repro.baselines import knn_baseline, majority_baseline, solo_baseline, svd_baseline
from repro.core.result import META_KEYS, validate_meta
from repro.utils.rng import as_seed

#: Golden snapshot of the stable surface.  Keep sorted groups in sync
#: with repro/api.py — an api change must edit both files (and docs).
GOLDEN_ALL = [
    # substrate
    "ProbeOracle",
    "ProbeStats",
    "BudgetExceededError",
    "BitMatrix",
    "dense_substrate",
    "packed_substrate",
    "packed_substrate_enabled",
    "kernel_backend",
    "kernel_info",
    "numpy_kernels",
    # model
    "Instance",
    "Community",
    # algorithms
    "Params",
    "RunResult",
    "META_KEYS",
    "validate_meta",
    "find_preferences",
    "find_preferences_unknown_d",
    "anytime_find_preferences",
    "batching_enabled",
    "batched_probes",
    "sequential_probes",
    # metrics
    "evaluate",
    # workloads
    "WORKLOADS",
    "make_instance",
    # parallel trials
    "run_trials",
    "derive_seeds",
    "sweep_trials",
    "SharedInstanceStore",
    "SharedInstanceHandle",
    # serving
    "serve",
    "ServeRuntime",
    "ServeService",
    "ServeConfig",
    "MicroBatchRouter",
    "RouterConfig",
    "save_runtime",
    "load_runtime",
    "save_service",
    "load_service",
    "run_loadgen",
    "LoadgenConfig",
    "LoadgenReport",
    "save_probe_stats",
    "load_probe_stats",
    # live metrics
    "MetricRegistry",
    "MetricsSnapshotSink",
    "metrics_collecting",
    # rng contract
    "as_generator",
]

#: Golden ``inspect.signature`` strings for the callable surface.
GOLDEN_SIGNATURES = {
    "dense_substrate": "() -> 'Iterator[None]'",
    "packed_substrate": "() -> 'Iterator[None]'",
    "packed_substrate_enabled": "() -> 'bool'",
    "kernel_backend": "() -> 'str'",
    "kernel_info": "() -> 'dict[str, Any]'",
    "numpy_kernels": "() -> 'Iterator[None]'",
    "find_preferences": (
        "(oracle: 'ProbeOracle', alpha: 'float', D: 'int', *, "
        "params: 'Params | None' = None, "
        "rng: 'int | np.random.Generator | None' = None) -> 'RunResult'"
    ),
    "find_preferences_unknown_d": (
        "(oracle: 'ProbeOracle', alpha: 'float', *, "
        "params: 'Params | None' = None, "
        "rng: 'int | np.random.Generator | None' = None, "
        "d_max: 'int | None' = None) -> 'RunResult'"
    ),
    "anytime_find_preferences": (
        "(oracle: 'ProbeOracle', *, params: 'Params | None' = None, "
        "rng: 'int | np.random.Generator | None' = None, "
        "max_phases: 'int | None' = None, d_max: 'int | None' = None, "
        "phase_callback: 'Callable[[int, float, np.ndarray], None] | None' = None)"
        " -> 'RunResult'"
    ),
    "make_instance": (
        "(workload: 'str', n: 'int', m: 'int', alpha: 'float', D: 'int', "
        "rng: 'int | np.random.Generator | None' = None) -> 'Instance'"
    ),
    "run_trials": (
        "(worker: 'Callable[..., Any]', trial_args: 'Sequence[tuple]', *, "
        "max_workers: 'int | None' = None, parallel: 'bool | None' = None)"
        " -> 'list[Any]'"
    ),
    "derive_seeds": (
        "(base_seed: 'int | np.random.Generator | None', count: 'int')"
        " -> 'list[int]'"
    ),
    "sweep_trials": (
        "(worker: 'Callable[..., Any]', instance: 'Instance', "
        "seeds: 'Sequence[int]', *, parallel: 'bool | None' = None, "
        "max_workers: 'int | None' = None) -> 'list[Any]'"
    ),
    "evaluate": (
        "(outputs: 'np.ndarray', truth: 'np.ndarray', "
        "members: 'Sequence[int] | np.ndarray | None' = None, *, "
        "diam: 'int | None' = None) -> 'EvaluationReport'"
    ),
    "as_generator": (
        "(rng: 'int | np.random.Generator | np.random.SeedSequence | None')"
        " -> 'np.random.Generator'"
    ),
    "ServeService": (
        "(instance: 'Instance | np.ndarray | BitMatrix', *,"
        " config: 'ServeConfig | None' = None)"
        " -> 'None'"
    ),
    "MicroBatchRouter": (
        "(service: 'ServeService', *, config: 'RouterConfig | None' = None) -> 'None'"
    ),
    "serve": (
        "(instance: 'Instance | np.ndarray | BitMatrix',"
        " config: 'ServeConfig | None' = None)"
        " -> 'ServeRuntime'"
    ),
    "save_runtime": "(path: 'str | Path', runtime: 'ServeRuntime') -> 'Path'",
    "load_runtime": "(path: 'str | Path', *, workers: 'int | None' = None) -> 'ServeRuntime'",
    "save_service": "(path: 'str | Path', service: 'ServeService') -> 'Path'",
    "load_service": "(path: 'str | Path') -> 'ServeService'",
    "run_loadgen": "(config: 'LoadgenConfig | None' = None) -> 'LoadgenReport'",
    "save_probe_stats": "(path: 'str | Path', stats: 'ProbeStats') -> 'Path'",
    "load_probe_stats": "(path: 'str | Path') -> 'ProbeStats'",
    "MetricRegistry": "() -> 'None'",
    "MetricsSnapshotSink": (
        "(path: 'str | Path', registry: 'MetricRegistry', *, "
        "interval_s: 'float' = 1.0, meta: 'dict[str, Any] | None' = None) -> 'None'"
    ),
    "metrics_collecting": "(registry: 'MetricRegistry') -> 'Iterator[MetricRegistry]'",
}


class TestSurfaceSnapshot:
    def test_all_matches_golden(self):
        assert list(api.__all__) == GOLDEN_ALL

    def test_every_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_signatures_match_golden(self):
        for name, golden in GOLDEN_SIGNATURES.items():
            actual = str(inspect.signature(getattr(api, name)))
            assert actual == golden, f"signature drift on api.{name}:\n{actual}"

    def test_top_level_package_exposes_api(self):
        import repro

        assert "api" in repro.__all__
        assert repro.api is api


def _instance(n=32, m=32, D=0, seed=3):
    return api.make_instance("planted", n=n, m=m, alpha=0.5, D=D, rng=seed)


class TestMetaVocabulary:
    def test_meta_keys_documented(self):
        for key, doc in META_KEYS.items():
            assert isinstance(doc, str) and doc, f"META_KEYS[{key!r}] lacks a description"

    def test_validate_meta_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown RunResult.meta keys"):
            validate_meta({"alpha": 0.5, "made_up_key": 1})

    def test_real_runs_stay_within_vocabulary(self):
        inst = _instance(D=2)
        runs = [
            api.find_preferences(api.ProbeOracle(inst), 0.5, 2, rng=7),
            api.find_preferences_unknown_d(api.ProbeOracle(inst), 0.5, rng=7, d_max=4),
            api.anytime_find_preferences(
                api.ProbeOracle(inst, budget=64), rng=7, d_max=2, max_phases=1
            ),
        ]
        for run in runs:
            assert validate_meta(run.meta) is run.meta

    def test_baselines_stay_within_vocabulary(self):
        inst = _instance(D=2)
        runs = [
            majority_baseline(api.ProbeOracle(inst), 8, rng=7),
            solo_baseline(api.ProbeOracle(inst), budget=8, rng=7),
            svd_baseline(api.ProbeOracle(inst), 8, rng=7),
            knn_baseline(api.ProbeOracle(inst), anchor=1, spread=4, rng=7),
        ]
        for run in runs:
            assert validate_meta(run.meta) is run.meta


class TestRngContract:
    """Every seed-ish parameter accepts int | Generator | None uniformly."""

    def test_find_preferences_accepts_generator(self):
        inst = _instance()
        a = api.find_preferences(api.ProbeOracle(inst), 0.5, 0, rng=11)
        b = api.find_preferences(
            api.ProbeOracle(inst), 0.5, 0, rng=np.random.default_rng(11)
        )
        assert np.array_equal(a.outputs, b.outputs)

    def test_derive_seeds_accepts_generator_and_none(self):
        assert api.derive_seeds(9, 4) == api.derive_seeds(np.random.default_rng(9), 4)
        assert len(api.derive_seeds(None, 4)) == 4

    def test_experiment_run_accepts_generator(self):
        from repro.experiments import exp_select

        a = exp_select.run(quick=True, rng=5)
        b = exp_select.run(quick=True, rng=np.random.default_rng(5))
        assert a.passed == b.passed
        assert a.table.rows == b.table.rows

    def test_build_report_accepts_generator(self):
        from repro.reporting import build_report

        report = build_report(["E1"], quick=True, seed=np.random.default_rng(2))
        assert isinstance(report.seed, int)  # resolved for the report header

    def test_as_seed_roundtrip(self):
        assert as_seed(123) == 123
        assert as_seed(np.int64(7)) == 7
        drawn = as_seed(np.random.default_rng(1))
        assert drawn == as_seed(np.random.default_rng(1))
        assert isinstance(drawn, int)


class TestDeprecationShims:
    # importlib, not `import repro.core.select as m`: the package
    # re-exports the `select` *function*, which shadows the submodule in
    # plain attribute-style imports.
    def test_select_batched_moved_to_batching(self):
        import importlib

        batching = importlib.import_module("repro.core.batching")
        select_mod = importlib.import_module("repro.core.select")
        with pytest.deprecated_call(match="moved to repro.core.batching"):
            shimmed = select_mod.select_batched
        assert shimmed is batching.select_batched

    def test_serve_config_moved_to_config(self):
        import importlib

        config_mod = importlib.import_module("repro.serve.config")
        service_mod = importlib.import_module("repro.serve.service")
        with pytest.deprecated_call(match="moved to repro.serve.config"):
            shimmed = service_mod.ServeConfig
        assert shimmed is config_mod.ServeConfig

    def test_unknown_attribute_still_raises(self):
        import importlib

        select_mod = importlib.import_module("repro.core.select")
        with pytest.raises(AttributeError):
            select_mod.does_not_exist
        service_mod = importlib.import_module("repro.serve.service")
        with pytest.raises(AttributeError):
            service_mod.does_not_exist

    def test_stable_surface_emits_no_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            inst = _instance()
            api.find_preferences(api.ProbeOracle(inst), 0.5, 0, rng=1)
            with api.sequential_probes():
                pass
            api.derive_seeds(1, 2)
