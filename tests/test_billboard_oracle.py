"""Tests for the probe oracle: values, accounting, budgets, billboard mirroring."""

import numpy as np
import pytest

from repro.billboard.exceptions import BudgetExceededError, ProbeError
from repro.billboard.oracle import ProbeOracle
from repro.model.instance import Instance


@pytest.fixture
def prefs():
    return np.asarray([[0, 1, 0, 1], [1, 1, 0, 0], [0, 0, 1, 1]], dtype=np.int8)


@pytest.fixture
def oracle(prefs):
    return ProbeOracle(prefs)


class TestProbe:
    def test_returns_hidden_value(self, oracle, prefs):
        for p in range(3):
            for o in range(4):
                assert oracle.probe(p, o) == prefs[p, o]

    def test_accepts_instance(self, prefs):
        oracle = ProbeOracle(Instance(prefs=prefs))
        assert oracle.n_players == 3

    def test_counts_per_player(self, oracle):
        oracle.probe(0, 0)
        oracle.probe(0, 1)
        oracle.probe(2, 3)
        stats = oracle.stats()
        assert stats.per_player.tolist() == [2, 0, 1]
        assert stats.total == 3
        assert stats.rounds == 2

    def test_repeats_charged_by_default(self, oracle):
        oracle.probe(0, 0)
        oracle.probe(0, 0)
        assert oracle.stats().per_player[0] == 2

    def test_repeats_free_when_disabled(self, prefs):
        oracle = ProbeOracle(prefs, charge_repeats=False)
        oracle.probe(0, 0)
        oracle.probe(0, 0)
        assert oracle.stats().per_player[0] == 1

    def test_bad_indices(self, oracle):
        with pytest.raises(ProbeError):
            oracle.probe(5, 0)
        with pytest.raises(ProbeError):
            oracle.probe(0, 9)
        with pytest.raises(ProbeError):
            oracle.probe(-1, 0)

    def test_mirrors_to_billboard(self, oracle):
        oracle.probe(1, 2)
        assert oracle.billboard.is_revealed(1, 2)
        assert oracle.billboard.grade(1, 2) == 0


class TestProbeMany:
    def test_values(self, oracle, prefs):
        players = np.asarray([0, 1, 2])
        objs = np.asarray([1, 0, 3])
        vals = oracle.probe_many(players, objs)
        assert vals.tolist() == [prefs[0, 1], prefs[1, 0], prefs[2, 3]]

    def test_empty_batch(self, oracle):
        assert oracle.probe_many(np.asarray([], dtype=int), np.asarray([], dtype=int)).size == 0

    def test_duplicate_pairs_each_charged(self, oracle):
        players = np.asarray([0, 0, 0])
        objs = np.asarray([1, 1, 1])
        oracle.probe_many(players, objs)
        assert oracle.stats().per_player[0] == 3

    def test_duplicates_free_when_repeats_uncharged(self, prefs):
        oracle = ProbeOracle(prefs, charge_repeats=False)
        oracle.probe_many(np.asarray([0, 0]), np.asarray([1, 1]))
        assert oracle.stats().per_player[0] == 1
        # probing again is free too
        oracle.probe_many(np.asarray([0]), np.asarray([1]))
        assert oracle.stats().per_player[0] == 1

    def test_shape_mismatch(self, oracle):
        with pytest.raises(ProbeError):
            oracle.probe_many(np.asarray([0, 1]), np.asarray([0]))

    def test_out_of_range(self, oracle):
        with pytest.raises(ProbeError):
            oracle.probe_many(np.asarray([7]), np.asarray([0]))

    def test_probe_all(self, oracle, prefs):
        vals = oracle.probe_all(1, np.arange(4))
        assert vals.tolist() == prefs[1].tolist()
        assert oracle.stats().per_player[1] == 4


class TestBudget:
    def test_budget_enforced_scalar(self, prefs):
        oracle = ProbeOracle(prefs, budget=2)
        oracle.probe(0, 0)
        oracle.probe(0, 1)
        with pytest.raises(BudgetExceededError) as exc:
            oracle.probe(0, 2)
        assert exc.value.player == 0
        assert exc.value.budget == 2

    def test_budget_enforced_batch(self, prefs):
        oracle = ProbeOracle(prefs, budget=3)
        with pytest.raises(BudgetExceededError):
            oracle.probe_many(np.zeros(4, dtype=int), np.arange(4))

    def test_other_players_unaffected(self, prefs):
        oracle = ProbeOracle(prefs, budget=1)
        oracle.probe(0, 0)
        oracle.probe(1, 0)  # independent budget

    def test_remaining(self, prefs):
        oracle = ProbeOracle(prefs, budget=5)
        oracle.probe(0, 0)
        assert oracle.remaining(0) == 4
        assert oracle.remaining(1) == 5
        unbudgeted = ProbeOracle(prefs)
        assert unbudgeted.remaining(0) == float("inf")

    def test_negative_budget_rejected(self, prefs):
        with pytest.raises(ValueError):
            ProbeOracle(prefs, budget=-1)


class TestPhases:
    def test_phase_accounting(self, oracle):
        oracle.start_phase("a")  # repro: noqa[RPL005] — exercises the manual pair API
        oracle.probe(0, 0)
        delta = oracle.finish_phase("a")  # repro: noqa[RPL005]
        assert delta.total == 1
        assert "a" in oracle.ledger

    def test_mismatched_billboard_rejected(self, prefs):
        from repro.billboard.board import Billboard

        with pytest.raises(ValueError):
            ProbeOracle(prefs, billboard=Billboard(2, 2))
