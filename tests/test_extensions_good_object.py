"""Tests for the good-object extension (reference [4]) and its workload."""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.extensions.good_object import good_object_protocol, solo_good_object
from repro.workloads.sparse import sparse_likes_instance


class TestSparseLikesWorkload:
    def test_common_object_liked_by_all_members(self):
        inst, common = sparse_likes_instance(64, 128, 0.5, 0.01, rng=0)
        members = inst.main_community().members
        assert (inst.prefs[members, common] == 1).all()
        assert members.size >= 32

    def test_sparsity(self):
        inst, _ = sparse_likes_instance(64, 256, 0.25, 2 / 256, rng=1)
        assert inst.prefs.mean() < 0.05

    def test_zero_like_prob(self):
        inst, common = sparse_likes_instance(32, 64, 0.5, 0.0, rng=2)
        members = inst.main_community().members
        # only the common object is liked, only by members
        assert inst.prefs.sum() == members.size

    def test_validation(self):
        with pytest.raises(ValueError):
            sparse_likes_instance(0, 10, 0.5, 0.1)
        with pytest.raises(ValueError):
            sparse_likes_instance(10, 10, 0.5, 1.5)


class TestProtocol:
    def _instance(self, seed=3):
        return sparse_likes_instance(96, 384, 0.5, 2 / 384, rng=seed)

    def test_members_always_satisfied(self):
        inst, _ = self._instance()
        oracle = ProbeOracle(inst.prefs)
        res = good_object_protocol(oracle, rng=4)
        members = inst.main_community().members
        assert res.satisfied[members].all()

    def test_found_objects_are_liked(self):
        inst, _ = self._instance(5)
        oracle = ProbeOracle(inst.prefs)
        res = good_object_protocol(oracle, rng=6)
        done = np.flatnonzero(res.satisfied)
        assert (inst.prefs[done, res.found[done]] == 1).all()

    def test_probe_accounting_consistent(self):
        inst, _ = self._instance(7)
        oracle = ProbeOracle(inst.prefs)
        res = good_object_protocol(oracle, rng=8)
        assert res.total_probes == oracle.stats().total

    def test_hater_never_satisfied(self):
        # A player liking nothing terminates unsatisfied without hanging.
        prefs = np.zeros((4, 16), dtype=np.int8)
        prefs[0, 3] = 1
        oracle = ProbeOracle(prefs)
        res = good_object_protocol(oracle, rng=9)
        assert res.found[0] == 3
        assert (res.found[1:] == -1).all()

    def test_max_rounds_cap(self):
        prefs = np.zeros((4, 64), dtype=np.int8)
        oracle = ProbeOracle(prefs)
        res = good_object_protocol(oracle, max_rounds=5, rng=10)
        assert res.rounds <= 5
        assert not res.satisfied.any()

    def test_explore_prob_validation(self):
        oracle = ProbeOracle(np.zeros((2, 4), dtype=np.int8))
        with pytest.raises(ValueError):
            good_object_protocol(oracle, explore_prob=0.0)

    def test_protocol_beats_solo_on_large_sharing_set(self):
        inst, _ = sparse_likes_instance(128, 512, 0.75, 1 / 512, rng=11)
        o1 = ProbeOracle(inst.prefs)
        proto = good_object_protocol(o1, rng=12)
        o2 = ProbeOracle(inst.prefs)
        solo = solo_good_object(o2, rng=13)
        assert proto.total_probes < solo.total_probes

    def test_solo_never_uses_recommendations(self):
        # With explore_prob=1.0 the trajectory is identical whether or
        # not other players post: probes are all uniform exploration.
        inst, _ = self._instance(14)
        oracle = ProbeOracle(inst.prefs)
        res = solo_good_object(oracle, rng=15)
        assert res.total_probes > 0
