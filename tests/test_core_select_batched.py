"""Tests for the population-batched Select driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billboard.oracle import ProbeOracle
from repro.core.batching import select_batched
from repro.core.select import select


def _setup(n=6, m=24, seed=0):
    rng = np.random.default_rng(seed)
    prefs = rng.integers(0, 2, (n, m), dtype=np.int8)
    return prefs, ProbeOracle(prefs)


class TestSharedCandidates:
    def test_matches_sequential_select(self):
        prefs, oracle = _setup()
        rng = np.random.default_rng(1)
        cands = rng.integers(0, 2, (4, 24), dtype=np.int8)
        players = np.arange(6)
        outcomes = select_batched(oracle, players, cands, 2, np.arange(24))

        for pl in players:
            ref_oracle = ProbeOracle(prefs)
            ref = select(cands, lambda j, _p=int(pl): ref_oracle.probe(_p, j), 2)
            got = outcomes[int(pl)]
            assert got.index == ref.index
            assert got.probes == ref.probes
            assert got.exhausted == ref.exhausted

    def test_probe_counts_match_sequential(self):
        prefs, oracle = _setup(seed=2)
        rng = np.random.default_rng(3)
        cands = rng.integers(0, 2, (3, 24), dtype=np.int8)
        players = np.arange(6)
        select_batched(oracle, players, cands, 1, np.arange(24))

        seq_oracle = ProbeOracle(prefs)
        for pl in players:
            select(cands, lambda j, _p=int(pl): seq_oracle.probe(_p, j), 1)
        assert np.array_equal(oracle.stats().per_player, seq_oracle.stats().per_player)

    def test_single_candidate_no_probes(self):
        prefs, oracle = _setup(seed=4)
        cands = np.zeros((1, 24), dtype=np.int8)
        outcomes = select_batched(oracle, np.arange(6), cands, 0, np.arange(24))
        assert all(o.probes == 0 for o in outcomes.values())
        assert oracle.stats().total == 0

    def test_coord_map_remaps_objects(self):
        prefs, oracle = _setup(seed=5)
        cands = np.asarray([[0, 1], [1, 0]], dtype=np.int8)
        coord_map = np.asarray([10, 20])
        select_batched(oracle, np.asarray([0]), cands, 0, coord_map)
        mask = oracle.billboard.revealed_mask()
        probed_objs = set(np.flatnonzero(mask[0]).tolist())
        assert probed_objs <= {10, 20}

    def test_coord_map_length_validated(self):
        _, oracle = _setup()
        cands = np.zeros((2, 3), dtype=np.int8)
        with pytest.raises(ValueError):
            select_batched(oracle, np.asarray([0]), cands, 0, np.asarray([0, 1]))


class TestPerPlayerCandidates:
    def test_dict_candidates(self):
        prefs, oracle = _setup(seed=6)
        rng = np.random.default_rng(7)
        cand_by_player = {
            pl: rng.integers(0, 2, (2 + pl % 2, 24), dtype=np.int8) for pl in range(6)
        }
        outcomes = select_batched(oracle, np.arange(6), cand_by_player, 3, np.arange(24))
        for pl in range(6):
            ref_oracle = ProbeOracle(prefs)
            ref = select(cand_by_player[pl], lambda j, _p=pl: ref_oracle.probe(_p, j), 3)
            assert outcomes[pl].index == ref.index
            assert np.array_equal(outcomes[pl].vector, ref.vector)


class TestProperties:
    @given(st.integers(0, 2**31 - 1), st.integers(1, 5), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_random(self, seed, k, bound):
        rng = np.random.default_rng(seed)
        prefs = rng.integers(0, 2, (4, 16), dtype=np.int8)
        cands = rng.integers(0, 2, (k, 16), dtype=np.int8)
        oracle = ProbeOracle(prefs)
        outcomes = select_batched(oracle, np.arange(4), cands, bound, np.arange(16))
        for pl in range(4):
            ref = select(cands, lambda j, _p=pl: int(prefs[_p, j]), bound)
            assert outcomes[pl].index == ref.index
            assert outcomes[pl].probes == ref.probes
