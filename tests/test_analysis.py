"""Tests for the analysis package (bounds, Lemma 4.1, shape fitting)."""

import math

import numpy as np
import pytest

from repro.analysis.bounds import (
    coalesce_max_outputs,
    coalesce_max_wildcards,
    large_radius_error_bound,
    large_radius_round_bound,
    rselect_probe_bound,
    select_probe_bound,
    small_radius_error_bound,
    small_radius_round_bound,
    zero_radius_round_bound,
)
from repro.analysis.lemma41 import (
    LEMMA41_CONSTANT,
    estimate_success_probability,
    lemma41_failure_bound,
    lemma41_min_parts,
)
from repro.analysis.shapes import fit_log_slope, fit_loglog_slope


class TestBounds:
    def test_select(self):
        assert select_probe_bound(4, 3) == 16
        with pytest.raises(ValueError):
            select_probe_bound(0, 1)

    def test_rselect(self):
        assert rselect_probe_bound(3, 1024, c=1.0) == 3 * 10
        with pytest.raises(ValueError):
            rselect_probe_bound(0, 10)

    def test_zero_radius(self):
        assert zero_radius_round_bound(math.e**2, 0.5) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            zero_radius_round_bound(10, 0)

    def test_small_radius_error(self):
        assert small_radius_error_bound(4) == 20
        with pytest.raises(ValueError):
            small_radius_error_bound(-1)

    def test_small_radius_rounds_monotone(self):
        a = small_radius_round_bound(256, 0.5, 2, 4)
        b = small_radius_round_bound(256, 0.5, 8, 4)
        assert b > a
        with pytest.raises(ValueError):
            small_radius_round_bound(256, 0.5, 2, 0)

    def test_coalesce(self):
        assert coalesce_max_outputs(0.25) == 4
        assert coalesce_max_outputs(0.3) == 3
        assert coalesce_max_wildcards(4, 0.5) == 40
        with pytest.raises(ValueError):
            coalesce_max_outputs(0)

    def test_large_radius(self):
        assert large_radius_error_bound(10, 0.5) == 20
        assert large_radius_round_bound(math.e, 1.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            large_radius_error_bound(-1, 0.5)


class TestLemma41:
    def test_constant(self):
        assert LEMMA41_CONSTANT == pytest.approx((10**3 * 5**5) / 720)

    def test_failure_bound_decreasing_in_s(self):
        assert lemma41_failure_bound(4, 10) > lemma41_failure_bound(4, 100)

    def test_failure_bound_below_half_at_prescription(self):
        for d in (1, 4, 16, 100):
            assert lemma41_failure_bound(d, lemma41_min_parts(d)) < 0.5

    def test_min_parts(self):
        assert lemma41_min_parts(0) == 1
        assert lemma41_min_parts(4) == math.ceil(100 * 8)
        with pytest.raises(ValueError):
            lemma41_min_parts(-1)

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            lemma41_failure_bound(-1, 2)
        with pytest.raises(ValueError):
            lemma41_failure_bound(2, 0)

    def test_estimator_identical_vectors(self):
        V = np.zeros((10, 16), dtype=np.int8)
        assert estimate_success_probability(V, 4, 10, rng=0) == 1.0

    def test_estimator_validation(self):
        with pytest.raises(ValueError):
            estimate_success_probability(np.zeros((0, 4)), 2, 5)
        with pytest.raises(ValueError):
            estimate_success_probability(np.zeros((2, 4)), 2, 0)

    def test_estimator_reproducible(self):
        gen = np.random.default_rng(0)
        V = gen.integers(0, 2, (20, 32), dtype=np.int8)
        a = estimate_success_probability(V, 4, 20, rng=5)
        b = estimate_success_probability(V, 4, 20, rng=5)
        assert a == b


class TestShapes:
    def test_loglog_recovers_power(self):
        xs = np.asarray([1.0, 2, 4, 8, 16])
        ys = 3.0 * xs**1.5
        assert fit_loglog_slope(xs, ys) == pytest.approx(1.5)

    def test_log_recovers_log_slope(self):
        xs = np.asarray([1.0, 2, 4, 8, 16])
        ys = 7.0 * np.log(xs) + 2
        assert fit_log_slope(xs, ys) == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_loglog_slope([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_loglog_slope([1.0, 2.0], [0.0, 2.0])
        with pytest.raises(ValueError):
            fit_log_slope([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_log_slope([1.0, 2.0, 3.0], [1.0, 2.0])
