"""Tests for the trial-level parallel runner and shared-memory instances."""

import numpy as np
import pytest

from repro.parallel import (
    SharedInstanceHandle,
    SharedInstanceStore,
    derive_seeds,
    run_trials,
)


def _square(x):
    return x * x


def _zr_trial(seed):
    # Module-level worker: one tiny Zero Radius run, summary stats only.
    from repro.billboard.oracle import ProbeOracle
    from repro.core.main import find_preferences
    from repro.metrics.evaluation import evaluate
    from repro.workloads.planted import planted_instance

    inst = planted_instance(48, 48, 0.5, 0, rng=seed)
    oracle = ProbeOracle(inst)
    res = find_preferences(oracle, 0.5, 0, rng=seed + 1)
    rep = evaluate(res.outputs, inst.prefs, inst.main_community().members)
    return rep.discrepancy, res.rounds


class TestDeriveSeeds:
    def test_deterministic(self):
        assert derive_seeds(7, 5) == derive_seeds(7, 5)

    def test_count(self):
        assert len(derive_seeds(0, 9)) == 9

    def test_distinct(self):
        seeds = derive_seeds(3, 20)
        assert len(set(seeds)) == 20

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            derive_seeds(0, -1)

    def test_generator_base_seed(self):
        assert derive_seeds(7, 5) == derive_seeds(np.random.default_rng(7), 5)

    def test_none_base_seed(self):
        assert len(derive_seeds(None, 3)) == 3


class TestRunTrials:
    def test_empty(self):
        assert run_trials(_square, []) == []

    def test_serial(self):
        out = run_trials(_square, [(2,), (3,)], parallel=False)
        assert out == [4, 9]

    def test_parallel_matches_serial(self):
        args = [(i,) for i in range(8)]
        serial = run_trials(_square, args, parallel=False)
        par = run_trials(_square, args, parallel=True, max_workers=2)
        assert serial == par

    def test_order_preserved(self):
        args = [(i,) for i in range(10)]
        assert run_trials(_square, args, parallel=True, max_workers=2) == [i * i for i in range(10)]

    def test_real_workload_parallel(self):
        seeds = derive_seeds(11, 4)
        serial = run_trials(_zr_trial, [(s,) for s in seeds], parallel=False)
        par = run_trials(_zr_trial, [(s,) for s in seeds], parallel=True, max_workers=2)
        assert serial == par
        assert all(d == 0 for d, _ in serial)

    def test_auto_mode_small_stays_serial(self):
        # 2 trials: heuristics pick serial; result correctness either way.
        assert run_trials(_square, [(1,), (2,)]) == [1, 4]


def _make_instance(n=40, m=56, D=2, seed=13):
    from repro.workloads.planted import planted_instance

    return planted_instance(n, m, 0.5, D, rng=seed)


def _handle_trial(handle, seed):
    # Module-level worker: rebuild the instance from the shared handle.
    from repro.billboard.oracle import ProbeOracle
    from repro.core.main import find_preferences

    inst = handle.instance()
    res = find_preferences(ProbeOracle(inst), 0.5, 0, rng=seed)
    return int(res.outputs.sum()), res.total_probes


class TestSharedInstanceStore:
    def test_prefs_round_trip(self):
        inst = _make_instance()
        with SharedInstanceStore() as store:
            handle = store.publish(inst)
            got = handle.prefs()
            assert got.dtype == np.int8
            assert np.array_equal(got, inst.prefs)

    def test_instance_round_trip_with_communities(self):
        inst = _make_instance()
        with SharedInstanceStore() as store:
            rebuilt = store.publish(inst).instance()
        assert rebuilt.name == inst.name
        assert len(rebuilt.communities) == len(inst.communities)
        for a, b in zip(rebuilt.communities, inst.communities):
            assert np.array_equal(a.members, b.members)
            assert (a.diameter, a.label) == (b.diameter, b.label)

    def test_raw_matrix_publish(self):
        rng = np.random.default_rng(4)
        prefs = rng.integers(0, 2, (9, 21), dtype=np.int8)  # m not a multiple of 8
        with SharedInstanceStore() as store:
            handle = store.publish(prefs)
            assert handle.shape == (9, 21)
            assert np.array_equal(handle.prefs(), prefs)

    def test_bit_packed_storage(self):
        # The published segment holds ceil(m/8) bytes per row, not m.
        with SharedInstanceStore() as store:
            handle = store.publish(np.ones((16, 100), dtype=np.int8))
            assert handle.packed_shape == (16, 13)

    def test_close_unlinks_and_is_idempotent(self):
        store = SharedInstanceStore()
        handle = store.publish(np.zeros((4, 8), dtype=np.int8))
        assert len(store) == 1
        store.close()
        assert len(store) == 0
        store.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            from repro.parallel.shared import _attach

            _attach(handle.shm_name)

    def test_handle_is_picklable(self):
        import pickle

        with SharedInstanceStore() as store:
            handle = store.publish(_make_instance())
            clone = pickle.loads(pickle.dumps(handle))
            assert isinstance(clone, SharedInstanceHandle)
            assert clone.shm_name == handle.shm_name
            assert np.array_equal(clone.prefs(), handle.prefs())

    @pytest.mark.parametrize("parallel", [False, True])
    def test_run_trials_with_handles(self, parallel):
        inst = _make_instance(D=0)
        seeds = derive_seeds(5, 4)
        with SharedInstanceStore() as store:
            handle = store.publish(inst)
            results = run_trials(
                _handle_trial,
                [(handle, s) for s in seeds],
                parallel=parallel,
                max_workers=2,
            )
        assert len(results) == 4
        assert len({r for r in results}) >= 1
        # Both modes agree trial-for-trial.
        if parallel:
            with SharedInstanceStore() as store:
                handle = store.publish(inst)
                serial = run_trials(
                    _handle_trial, [(handle, s) for s in seeds], parallel=False
                )
            assert serial == results


class TestSweepTrials:
    def test_matches_manual_publish(self):
        from repro.experiments.harness import sweep_trials

        inst = _make_instance(D=0)
        seeds = derive_seeds(8, 3)
        via_sweep = sweep_trials(_handle_trial, inst, seeds, parallel=False)
        with SharedInstanceStore() as store:
            handle = store.publish(inst)
            manual = run_trials(_handle_trial, [(handle, s) for s in seeds], parallel=False)
        assert via_sweep == manual
