"""Tests for the trial-level parallel runner."""

import numpy as np
import pytest

from repro.parallel import derive_seeds, run_trials


def _square(x):
    return x * x


def _zr_trial(seed):
    # Module-level worker: one tiny Zero Radius run, summary stats only.
    from repro.billboard.oracle import ProbeOracle
    from repro.core.main import find_preferences
    from repro.metrics.evaluation import evaluate
    from repro.workloads.planted import planted_instance

    inst = planted_instance(48, 48, 0.5, 0, rng=seed)
    oracle = ProbeOracle(inst)
    res = find_preferences(oracle, 0.5, 0, rng=seed + 1)
    rep = evaluate(res.outputs, inst.prefs, inst.main_community().members)
    return rep.discrepancy, res.rounds


class TestDeriveSeeds:
    def test_deterministic(self):
        assert derive_seeds(7, 5) == derive_seeds(7, 5)

    def test_count(self):
        assert len(derive_seeds(0, 9)) == 9

    def test_distinct(self):
        seeds = derive_seeds(3, 20)
        assert len(set(seeds)) == 20

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            derive_seeds(0, -1)


class TestRunTrials:
    def test_empty(self):
        assert run_trials(_square, []) == []

    def test_serial(self):
        out = run_trials(_square, [(2,), (3,)], parallel=False)
        assert out == [4, 9]

    def test_parallel_matches_serial(self):
        args = [(i,) for i in range(8)]
        serial = run_trials(_square, args, parallel=False)
        par = run_trials(_square, args, parallel=True, max_workers=2)
        assert serial == par

    def test_order_preserved(self):
        args = [(i,) for i in range(10)]
        assert run_trials(_square, args, parallel=True, max_workers=2) == [i * i for i in range(10)]

    def test_real_workload_parallel(self):
        seeds = derive_seeds(11, 4)
        serial = run_trials(_zr_trial, [(s,) for s in seeds], parallel=False)
        par = run_trials(_zr_trial, [(s,) for s in seeds], parallel=True, max_workers=2)
        assert serial == par
        assert all(d == 0 for d, _ in serial)

    def test_auto_mode_small_stays_serial(self):
        # 2 trials: heuristics pick serial; result correctness either way.
        assert run_trials(_square, [(1,), (2,)]) == [1, 4]
