"""Tests for Algorithm RSelect (Fig. 7 / Theorem 6.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import Params
from repro.core.rselect import rselect, rselect_coroutine
from repro.metrics.hamming import hamming, hamming_to_each
from repro.utils.validation import WILDCARD


def make_probe(hidden, counter=None):
    def probe(j):
        if counter is not None:
            counter.append(j)
        return int(hidden[j])

    return probe


def vector_at_distance(hidden, d, gen):
    row = hidden.copy()
    if d:
        row[gen.choice(hidden.size, size=min(d, hidden.size), replace=False)] ^= 1
    return row


class TestBasics:
    def test_single_candidate(self):
        hidden = np.asarray([0, 1, 0], dtype=np.int8)
        out = rselect(np.asarray([[1, 1, 1]], dtype=np.int8), make_probe(hidden), 64, rng=0)
        assert out.index == 0
        assert out.probes == 0

    def test_picks_exact_match(self):
        gen = np.random.default_rng(0)
        hidden = gen.integers(0, 2, 200, dtype=np.int8)
        far = vector_at_distance(hidden, 80, gen)
        cands = np.stack([far, hidden.copy()])
        out = rselect(cands, make_probe(hidden), 1024, rng=1)
        assert out.index == 1

    def test_identical_candidates_no_probes(self):
        hidden = np.zeros(10, dtype=np.int8)
        cands = np.zeros((3, 10), dtype=np.int8)
        counter = []
        out = rselect(cands, make_probe(hidden, counter), 64, rng=2)
        assert counter == []
        assert out.index in (0, 1, 2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            rselect(np.empty((0, 3)), lambda j: 0, 10)

    def test_rejects_bad_population(self):
        with pytest.raises(ValueError):
            rselect(np.asarray([[0]]), lambda j: 0, 0)

    def test_wildcards_skipped(self):
        hidden = np.asarray([0, 0, 0, 0], dtype=np.int8)
        cands = np.asarray([[WILDCARD, 0, 0, 0], [WILDCARD, 1, 1, 1]], dtype=np.int8)
        out = rselect(cands, make_probe(hidden), 1024, rng=3)
        assert out.index == 0


class TestProbeBudget:
    @given(st.integers(2, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_budget_respected(self, k, seed):
        gen = np.random.default_rng(seed)
        hidden = gen.integers(0, 2, 128, dtype=np.int8)
        cands = gen.integers(0, 2, (k, 128), dtype=np.int8)
        counter = []
        p = Params.practical()
        rselect(cands, make_probe(hidden, counter), 1024, params=p, rng=gen)
        pairs = k * (k - 1) // 2
        assert len(counter) <= pairs * p.rs_num_probes(1024)

    def test_caching_within_invocation(self):
        # Coordinates shared between pair-games must be probed once.
        gen = np.random.default_rng(5)
        hidden = gen.integers(0, 2, 64, dtype=np.int8)
        cands = gen.integers(0, 2, (4, 64), dtype=np.int8)
        counter = []
        rselect(cands, make_probe(hidden, counter), 1024, rng=6)
        assert len(counter) == len(set(counter))


class TestQuality:
    def test_never_picks_far_decoy_whp(self):
        gen = np.random.default_rng(7)
        failures = 0
        for trial in range(20):
            hidden = gen.integers(0, 2, 400, dtype=np.int8)
            near = vector_at_distance(hidden, 5, gen)
            decoys = [vector_at_distance(hidden, 200, gen) for _ in range(3)]
            cands = np.stack([near] + decoys)
            out = rselect(cands, make_probe(hidden), 1024, rng=gen)
            if hamming(out.vector.astype(np.int8), hidden) > 50:
                failures += 1
        assert failures == 0

    def test_constant_factor_closeness(self):
        gen = np.random.default_rng(8)
        worst = 0.0
        for trial in range(20):
            hidden = gen.integers(0, 2, 400, dtype=np.int8)
            cands = np.stack([vector_at_distance(hidden, d, gen) for d in (10, 20, 40, 80)])
            out = rselect(cands, make_probe(hidden), 1024, rng=gen)
            dist = hamming(out.vector.astype(np.int8), hidden)
            worst = max(worst, dist / 10)
        assert worst <= 4.0

    def test_coroutine_matches_callable_driver(self):
        # rselect() is a thin driver over rselect_coroutine(); driving
        # the coroutine by hand must give the identical outcome.
        gen = np.random.default_rng(11)
        hidden = gen.integers(0, 2, 128, dtype=np.int8)
        cands = gen.integers(0, 2, (4, 128), dtype=np.int8)
        a = rselect(cands, make_probe(hidden), 512, rng=7)
        co = rselect_coroutine(cands, 512, rng=7)
        try:
            coord = next(co)
            while True:
                coord = co.send(int(hidden[coord]))
        except StopIteration as stop:
            b = stop.value
        assert a.index == b.index
        assert a.probes == b.probes

    def test_exhausted_fallback_fewest_losses(self):
        # Candidates engineered so that everyone may lose some game at a
        # tiny sample size; output must still be one of the inputs.
        gen = np.random.default_rng(9)
        hidden = gen.integers(0, 2, 16, dtype=np.int8)
        cands = gen.integers(0, 2, (5, 16), dtype=np.int8)
        out = rselect(cands, make_probe(hidden), 2, rng=10)
        assert 0 <= out.index < 5
