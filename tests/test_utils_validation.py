"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    WILDCARD,
    check_alpha,
    check_binary_matrix,
    check_fraction,
    check_nonneg_int,
    check_pos_int,
    check_value_matrix,
)


class TestIntChecks:
    def test_pos_int_accepts_positive(self):
        assert check_pos_int(3, "x") == 3

    def test_pos_int_accepts_numpy_int(self):
        assert check_pos_int(np.int32(5), "x") == 5

    def test_pos_int_rejects_zero(self):
        with pytest.raises(ValueError):
            check_pos_int(0, "x")

    def test_pos_int_rejects_negative(self):
        with pytest.raises(ValueError):
            check_pos_int(-2, "x")

    def test_pos_int_rejects_bool(self):
        with pytest.raises(TypeError):
            check_pos_int(True, "x")

    def test_pos_int_rejects_float(self):
        with pytest.raises(TypeError):
            check_pos_int(2.0, "x")

    def test_nonneg_accepts_zero(self):
        assert check_nonneg_int(0, "x") == 0

    def test_nonneg_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonneg_int(-1, "x")

    def test_error_message_contains_name(self):
        with pytest.raises(ValueError, match="myparam"):
            check_pos_int(-1, "myparam")


class TestFractionChecks:
    def test_accepts_one(self):
        assert check_fraction(1.0, "f") == 1.0

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "f")

    def test_inclusive_low_accepts_zero(self):
        assert check_fraction(0.0, "f", inclusive_low=True) == 0.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.01, "f")

    def test_alpha_requires_one_player(self):
        with pytest.raises(ValueError):
            check_alpha(0.001, n=100)

    def test_alpha_ok_without_n(self):
        assert check_alpha(0.001) == 0.001

    def test_alpha_boundary(self):
        assert check_alpha(0.01, n=100) == 0.01


class TestMatrixChecks:
    def test_binary_ok(self):
        out = check_binary_matrix(np.asarray([[0, 1], [1, 0]]))
        assert out.dtype == np.int8
        assert out.flags["C_CONTIGUOUS"]

    def test_binary_rejects_wildcard(self):
        with pytest.raises(ValueError):
            check_binary_matrix(np.asarray([[0, WILDCARD]]))

    def test_binary_rejects_1d(self):
        with pytest.raises(ValueError):
            check_binary_matrix(np.asarray([0, 1]))

    def test_binary_rejects_other_values(self):
        with pytest.raises(ValueError):
            check_binary_matrix(np.asarray([[0, 2]]))

    def test_binary_empty_ok(self):
        out = check_binary_matrix(np.empty((0, 4)))
        assert out.shape == (0, 4)

    def test_value_matrix_accepts_wildcard(self):
        out = check_value_matrix(np.asarray([[0, 1, WILDCARD]]))
        assert out.dtype == np.int8

    def test_value_matrix_rejects_two(self):
        with pytest.raises(ValueError):
            check_value_matrix(np.asarray([[2]]))

    def test_wildcard_is_minus_one(self):
        # The whole library encodes "?" as -1; lock it down.
        assert WILDCARD == -1
