"""Tests for the baseline algorithms."""

import numpy as np
import pytest

from repro.baselines.knn import knn_baseline
from repro.baselines.majority import majority_baseline
from repro.baselines.solo import solo_baseline
from repro.baselines.svd import svd_baseline
from repro.billboard.oracle import ProbeOracle
from repro.metrics.evaluation import errors
from repro.workloads.mixtures import mixture_instance
from repro.workloads.planted import planted_instance


@pytest.fixture
def mixture():
    return mixture_instance(64, 64, 2, noise=0.02, rng=50)


class TestSolo:
    def test_full_budget_exact(self, mixture):
        oracle = ProbeOracle(mixture)
        res = solo_baseline(oracle)
        assert (errors(res.outputs, mixture.prefs) == 0).all()
        assert res.rounds == 64
        assert res.algorithm == "solo"

    def test_partial_budget_costs_budget(self, mixture):
        oracle = ProbeOracle(mixture)
        res = solo_baseline(oracle, budget=10, rng=0)
        assert res.rounds == 10
        assert res.meta["budget"] == 10

    def test_partial_budget_probed_entries_exact(self, mixture):
        oracle = ProbeOracle(mixture)
        res = solo_baseline(oracle, budget=10, rng=1)
        mask = oracle.billboard.revealed_mask()
        assert (res.outputs[mask] == mixture.prefs[mask]).all()

    def test_budget_capped_at_m(self, mixture):
        oracle = ProbeOracle(mixture)
        res = solo_baseline(oracle, budget=10_000)
        assert res.rounds == 64

    def test_zero_budget(self, mixture):
        oracle = ProbeOracle(mixture)
        res = solo_baseline(oracle, budget=0)
        assert res.rounds == 0
        assert (res.outputs == 0).all()

    def test_negative_budget_rejected(self, mixture):
        with pytest.raises(ValueError):
            solo_baseline(ProbeOracle(mixture), budget=-1)


class TestMajority:
    def test_single_community_recovers(self):
        inst = planted_instance(64, 64, 1.0, 0, rng=51)
        oracle = ProbeOracle(inst)
        res = majority_baseline(oracle, 16, rng=2)
        assert (errors(res.outputs, inst.prefs) == 0).all()

    def test_all_players_same_output(self, mixture):
        oracle = ProbeOracle(mixture)
        res = majority_baseline(oracle, 8, rng=3)
        assert (res.outputs == res.outputs[0]).all()

    def test_cost_equals_budget(self, mixture):
        oracle = ProbeOracle(mixture)
        res = majority_baseline(oracle, 12, rng=4)
        assert res.rounds == 12

    def test_minority_community_suffers(self):
        # Two opposing types at 75% / 25%: the column majority converges
        # to the dominant type, so minority members get ~half the
        # coordinates wrong — the failure mode that motivates
        # per-community reconstruction.
        inst = mixture_instance(80, 64, 2, noise=0.0, weights=[0.75, 0.25], rng=52)
        minority = min(inst.communities, key=lambda c: c.size)
        oracle = ProbeOracle(inst)
        res = majority_baseline(oracle, 32, rng=5)
        member_errs = errors(res.outputs, inst.prefs)[minority.members]
        assert member_errs.mean() > 10

    def test_rejects_zero_budget(self, mixture):
        with pytest.raises(ValueError):
            majority_baseline(ProbeOracle(mixture), 0)


class TestKnn:
    def test_costs_anchor_plus_spread(self, mixture):
        oracle = ProbeOracle(mixture)
        res = knn_baseline(oracle, 10, 6, rng=6)
        assert res.rounds == 16
        assert res.meta["anchor"] == 10 and res.meta["spread"] == 6

    def test_own_probes_kept(self, mixture):
        oracle = ProbeOracle(mixture)
        res = knn_baseline(oracle, 10, 6, rng=7)
        mask = oracle.billboard.revealed_mask()
        assert (res.outputs[mask] == mixture.prefs[mask]).all()

    def test_clustered_instance_good_accuracy(self):
        inst = mixture_instance(80, 80, 2, noise=0.0, rng=53)
        oracle = ProbeOracle(inst)
        res = knn_baseline(oracle, 20, 20, 10, rng=8)
        assert errors(res.outputs, inst.prefs).mean() < 20

    def test_neighbor_cap(self, mixture):
        oracle = ProbeOracle(mixture)
        res = knn_baseline(oracle, 8, 0, k_neighbors=1000, rng=9)
        assert res.meta["k_neighbors"] == 63

    def test_validation(self, mixture):
        oracle = ProbeOracle(mixture)
        with pytest.raises(ValueError):
            knn_baseline(oracle, 0, 5)
        with pytest.raises(ValueError):
            knn_baseline(oracle, 5, -1)
        with pytest.raises(ValueError):
            knn_baseline(oracle, 5, 5, k_neighbors=0)


class TestSvd:
    def test_low_rank_instance_good(self):
        inst = mixture_instance(96, 96, 2, noise=0.0, rng=54)
        oracle = ProbeOracle(inst)
        res = svd_baseline(oracle, 24, rank=2, rng=10)
        assert errors(res.outputs, inst.prefs).mean() < 15

    def test_cost_equals_budget(self, mixture):
        oracle = ProbeOracle(mixture)
        res = svd_baseline(oracle, 16, rank=2, rng=11)
        assert res.rounds == 16

    def test_own_probes_kept(self, mixture):
        oracle = ProbeOracle(mixture)
        res = svd_baseline(oracle, 16, rank=2, rng=12)
        mask = oracle.billboard.revealed_mask()
        assert (res.outputs[mask] == mixture.prefs[mask]).all()

    def test_rank_capped(self, mixture):
        oracle = ProbeOracle(mixture)
        res = svd_baseline(oracle, 16, rank=1000, rng=13)
        assert res.meta["rank"] < 64

    def test_outputs_binary(self, mixture):
        oracle = ProbeOracle(mixture)
        res = svd_baseline(oracle, 16, rank=4, rng=14)
        assert np.isin(res.outputs, (0, 1)).all()

    def test_validation(self, mixture):
        oracle = ProbeOracle(mixture)
        with pytest.raises(ValueError):
            svd_baseline(oracle, 0)
        with pytest.raises(ValueError):
            svd_baseline(oracle, 5, rank=0)

    def test_tiny_matrix_dense_fallback(self):
        inst = mixture_instance(4, 4, 1, rng=55)
        oracle = ProbeOracle(inst)
        res = svd_baseline(oracle, 4, rank=2, rng=15)
        assert res.outputs.shape == (4, 4)
