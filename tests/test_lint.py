"""Tests for the repro lint engine, the seventeen RPL rules, and the CLI.

Every rule is pinned by a fixture pair under ``tests/lint_fixtures/``:
the *bad* file must trip exactly that rule (and stops tripping anything
when the rule is ignored — proving the rule, not a neighbour, catches
it), the *good* file must be entirely clean under the full rule set at
the same simulated library path.  The final test is the repo-wide
self-check: ``python -m repro lint src tests benchmarks examples``
exits 0.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, collect_files, lint_paths, lint_source, rules_by_id
from repro.lint.cli import main as lint_main
from repro.lint.engine import module_path_of

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

#: Simulated repo paths: rules scope by path, so fixture text is linted
#: *as if* it lived inside the library (or the experiments package).
LIB_PATH = "src/repro/core/fixture.py"
EXP_PATH = "src/repro/experiments/exp_fixture.py"
SERVE_PATH = "src/repro/serve/fixture.py"

#: rule id -> (bad fixture, simulated path, expected findings, message fragment)
BAD_CASES = {
    "RPL001": ("rpl001_bad.py", LIB_PATH, 5, "raw generator construction"),
    "RPL002": ("rpl002_bad.py", LIB_PATH, 2, "bypasses the oracle"),
    "RPL003": ("rpl003_bad.py", LIB_PATH, 2, "unknown RunResult.meta key"),
    "RPL004": ("rpl004_bad.py", LIB_PATH, 1, "hot spot"),
    "RPL005": ("rpl005_bad.py", LIB_PATH, 3, "leaks the phase"),
    "RPL006": ("rpl006_bad.py", LIB_PATH, 1, "does not define __all__"),
    "RPL007": ("rpl007_bad.py", LIB_PATH, 2, "mutable default argument"),
    "RPL008": ("rpl008_bad.py", EXP_PATH, 1, "rename `seed` to `rng`"),
    "RPL009": ("rpl009_bad.py", SERVE_PATH, 2, "touches the preference matrix"),
    "RPL010": ("rpl010_bad.py", LIB_PATH, 2, "bitpack boundary"),
    "RPL011": ("rpl011_bad.py", LIB_PATH, 4, "evaluated even when telemetry is off"),
    "RPL012": ("rpl012_bad.py", LIB_PATH, 2, "pins the caller to one topology"),
    "RPL013": ("rpl013_bad.py", SERVE_PATH, 2, "outside the commit protocol"),
    "RPL014": ("rpl014_bad.py", SERVE_PATH, 2, "breaks full-population lockstep"),
    "RPL015": ("rpl015_bad.py", LIB_PATH, 2, "marker visibility"),
    "RPL016": ("rpl016_bad.py", LIB_PATH, 2, "outside the parallel substrate"),
    "RPL017": ("rpl017_bad.py", LIB_PATH, 4, "bypasses the kernel dispatch namespace"),
}

GOOD_CASES = {
    "RPL001": ("rpl001_good.py", LIB_PATH),
    "RPL002": ("rpl002_good.py", LIB_PATH),
    "RPL003": ("rpl003_good.py", LIB_PATH),
    "RPL004": ("rpl004_good.py", LIB_PATH),
    "RPL005": ("rpl005_good.py", LIB_PATH),
    "RPL006": ("rpl006_good.py", LIB_PATH),
    "RPL007": ("rpl007_good.py", LIB_PATH),
    "RPL008": ("rpl008_good.py", EXP_PATH),
    "RPL009": ("rpl009_good.py", SERVE_PATH),
    "RPL010": ("rpl010_good.py", LIB_PATH),
    "RPL011": ("rpl011_good.py", LIB_PATH),
    "RPL012": ("rpl012_good.py", LIB_PATH),
    "RPL013": ("rpl013_good.py", SERVE_PATH),
    "RPL014": ("rpl014_good.py", SERVE_PATH),
    "RPL015": ("rpl015_good.py", LIB_PATH),
    "RPL016": ("rpl016_good.py", LIB_PATH),
    "RPL017": ("rpl017_good.py", LIB_PATH),
}


def lint_fixture(name: str, as_path: str, rules=None):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(source, list(ALL_RULES) if rules is None else rules, path=as_path)


# ---------------------------------------------------------------- rules


@pytest.mark.parametrize("rule_id", sorted(BAD_CASES))
def test_bad_fixture_trips_its_rule(rule_id):
    name, as_path, expected, fragment = BAD_CASES[rule_id]
    diagnostics = lint_fixture(name, as_path)
    hits = [d for d in diagnostics if d.rule == rule_id]
    assert len(hits) == expected, [d.format() for d in diagnostics]
    assert all(d.rule == rule_id for d in diagnostics), "bad fixture trips a foreign rule"
    assert any(fragment in d.message for d in hits)
    assert all(d.severity == "error" and d.line >= 1 for d in hits)


@pytest.mark.parametrize("rule_id", sorted(BAD_CASES))
def test_bad_fixture_passes_without_its_rule(rule_id):
    """Removing the one rule makes the bad file clean — the finding is
    attributable to that rule, not to an overlapping neighbour."""
    name, as_path, _, _ = BAD_CASES[rule_id]
    others = [r for r in ALL_RULES if r.id != rule_id]
    assert lint_fixture(name, as_path, rules=others) == []


@pytest.mark.parametrize("rule_id", sorted(GOOD_CASES))
def test_good_fixture_is_clean(rule_id):
    name, as_path = GOOD_CASES[rule_id]
    diagnostics = lint_fixture(name, as_path)
    assert diagnostics == [], [d.format() for d in diagnostics]


def test_dishonest_dunder_all_is_flagged():
    diagnostics = lint_fixture("rpl006_dishonest.py", LIB_PATH)
    assert [d.rule for d in diagnostics] == ["RPL006"]
    assert "'ghost'" in diagnostics[0].message


# ------------------------------------------------------------- scoping


def test_library_rules_skip_non_library_files():
    """RPL001 is scoped to src/repro: the same violating source is fine
    in a test file (tests seed raw generators on purpose)."""
    source = (FIXTURES / "rpl001_bad.py").read_text(encoding="utf-8")
    assert lint_source(source, ALL_RULES, path="tests/test_fixture.py") == []


def test_rng_module_itself_is_exempt():
    source = (FIXTURES / "rpl001_bad.py").read_text(encoding="utf-8")
    diagnostics = lint_source(source, ALL_RULES, path="src/repro/utils/rng.py")
    assert [d for d in diagnostics if d.rule == "RPL001"] == []


def test_meta_rule_applies_everywhere():
    """RPL003 guards the vocabulary even in tests/benchmarks."""
    source = (FIXTURES / "rpl003_bad.py").read_text(encoding="utf-8")
    diagnostics = lint_source(source, ALL_RULES, path="tests/test_fixture.py")
    assert [d.rule for d in diagnostics] == ["RPL003", "RPL003"]


def test_obs_layer_itself_exempt_from_rpl011():
    """RPL011 guards call sites, not the obs layer's own machinery."""
    source = (FIXTURES / "rpl011_bad.py").read_text(encoding="utf-8")
    diagnostics = lint_source(source, ALL_RULES, path="src/repro/obs/fixture.py")
    assert [d for d in diagnostics if d.rule == "RPL011"] == []


def test_module_path_of():
    assert module_path_of("src/repro/core/main.py") == "repro/core/main.py"
    assert module_path_of("/abs/checkout/src/repro/obs/__init__.py") == "repro/obs/__init__.py"
    assert module_path_of("tests/test_lint.py") is None
    assert module_path_of("src/other/pkg.py") is None


# -------------------------------------------------------- suppressions


_UNIQUE_RULE = [rules_by_id()["RPL004"]]


def test_noqa_targeted_suppression():
    source = "import numpy as np\n\nx = np.unique(a, axis=0)  # repro: noqa[RPL004]\n"
    assert lint_source(source, _UNIQUE_RULE, path=LIB_PATH) == []


def test_noqa_blanket_suppression():
    source = "import numpy as np\n\nx = np.unique(a, axis=0)  # repro: noqa\n"
    assert lint_source(source, _UNIQUE_RULE, path=LIB_PATH) == []


def test_noqa_wrong_rule_does_not_suppress():
    source = "import numpy as np\n\nx = np.unique(a, axis=0)  # repro: noqa[RPL001]\n"
    diagnostics = lint_source(source, _UNIQUE_RULE, path=LIB_PATH)
    assert [d.rule for d in diagnostics] == ["RPL004"]


def test_syntax_error_yields_rpl000():
    diagnostics = lint_source("def broken(:\n", ALL_RULES, path=LIB_PATH)
    assert [d.rule for d in diagnostics] == ["RPL000"]
    assert diagnostics[0].severity == "error"


# ---------------------------------------------------------- the runner


def test_lint_paths_select_and_ignore(tmp_path):
    bad = tmp_path / "src" / "repro" / "core" / "combo.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import numpy as np\n\n\ndef f(x=[]):\n    return np.unique(x, axis=0)\n",
        encoding="utf-8",
    )
    everything = lint_paths([bad])
    assert sorted({d.rule for d in everything}) == ["RPL004", "RPL006", "RPL007"]
    only_007 = lint_paths([bad], select=["RPL007"])
    assert [d.rule for d in only_007] == ["RPL007"]
    without_007 = lint_paths([bad], ignore=["RPL007"])
    assert "RPL007" not in {d.rule for d in without_007}


def test_collect_files_skips_caches_and_fixtures(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n", encoding="utf-8")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "mod.cpython-311.pyc").write_text("", encoding="utf-8")
    (tmp_path / "pkg" / "lint_fixtures").mkdir()
    (tmp_path / "pkg" / "lint_fixtures" / "bad.py").write_text("x = 1\n", encoding="utf-8")
    files = collect_files([tmp_path])
    assert [f.name for f in files] == ["mod.py"]
    # Fixture files named directly (the pre-commit case) are skipped too.
    assert collect_files([tmp_path / "pkg" / "lint_fixtures" / "bad.py"]) == []


def test_rules_by_id_is_complete():
    catalog = rules_by_id()
    assert sorted(catalog) == [f"RPL{i:03d}" for i in range(1, 18)]
    for rule_id, rule in catalog.items():
        assert rule.id == rule_id
        assert rule.severity in ("error", "warning")
        assert rule.summary and rule.hint


def test_every_rule_has_a_fixture_pair():
    """Meta-test: the case tables above must cover the whole catalog,
    and every fixture file they name must exist — a rule added without
    its bad/good pair fails here before it fails in review."""
    catalog = rules_by_id()
    assert set(BAD_CASES) == set(catalog)
    assert set(GOOD_CASES) == set(catalog)
    for rule_id in catalog:
        assert (FIXTURES / f"{rule_id.lower()}_bad.py").is_file()
        assert (FIXTURES / f"{rule_id.lower()}_good.py").is_file()


# --------------------------------------------------------------- CLI


def test_cli_clean_run_exits_zero(tmp_path, capsys):
    good = tmp_path / "ok.py"
    good.write_text("x = 1\n", encoding="utf-8")
    assert lint_main([str(good)]) == 0
    assert "1 files checked: clean" in capsys.readouterr().out


def test_cli_findings_exit_one_and_json(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import numpy as np\n\nu = np.unique(v, axis=0)\n", encoding="utf-8")
    assert lint_main(["--format", "json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert sorted(d["rule"] for d in payload) == ["RPL004", "RPL006"]
    assert {"rule", "severity", "path", "line", "col", "message", "hint"} <= set(payload[0])


def test_cli_unknown_rule_id_exits_two(capsys):
    assert lint_main(["--select", "RPL999", "src"]) == 2
    assert "unknown rule ids" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in rules_by_id():
        assert rule_id in out


# ---------------------------------------------------------- self-check


def test_repo_is_lint_clean():
    """The acceptance gate: the repo's own code passes its own linter."""
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src", "tests", "benchmarks", "examples"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout
