"""Tests for the live metrics layer (`repro.obs.metrics`).

Pins the three ISSUE contracts: fixed bucket boundaries merge *exactly*
across histograms (hypothesis property tests over split observation
streams and a JSON round-trip), the disabled path of the module-level
helpers costs a single attribute check (micro-benchmark against an empty
function), and the registry's three surfaces — Prometheus exposition,
JSONL snapshots, `obs top` frames — all derive from the same buckets.
"""

from __future__ import annotations

import json
import timeit

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import metrics
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    SIZE_BUCKETS,
    Histogram,
    MetricRegistry,
    MetricsSnapshotSink,
    collecting,
)
from repro.obs.schema import SCHEMA_VERSION, load_jsonl


@pytest.fixture(autouse=True)
def _no_active_registry():
    """Every test starts and ends with metrics off (no global leaks)."""
    assert metrics.get_registry() is None
    yield
    metrics.set_registry(None)


# ------------------------------------------------------------ histogram


class TestHistogram:
    def test_bucket_assignment_is_upper_bound_inclusive(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value, bucket in [(0.5, 0), (1.0, 0), (1.5, 1), (2.0, 1), (4.0, 2), (5.0, 3)]:
            h = Histogram("h", bounds=(1.0, 2.0, 4.0))
            h.observe(value)
            assert h.counts[bucket] == 1, (value, h.counts)
        assert len(hist.counts) == 4  # three bounds + overflow

    def test_bounds_must_be_ascending_and_non_empty(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="non-empty"):
            Histogram("h", bounds=())

    def test_fixed_boundaries_are_exact_binary_floats(self):
        """Powers of two survive a JSON round-trip bit for bit — the
        property that makes snapshot-file merges exact."""
        for bounds in (LATENCY_BUCKETS_S, SIZE_BUCKETS):
            assert tuple(json.loads(json.dumps(list(bounds)))) == bounds

    def test_quantile_empty_and_bounds_checks(self):
        hist = Histogram("h")
        assert hist.quantile(0.5) == 0.0
        with pytest.raises(ValueError, match="quantile"):
            hist.quantile(1.5)

    def test_quantile_interpolates_and_is_monotone(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in [0.5] * 50 + [3.0] * 50:
            hist.observe(value)
        # Half the mass in (0, 1], half in (2, 4]: p25 inside the first
        # bucket, p75 inside the third.
        assert 0.0 < hist.quantile(0.25) <= 1.0
        assert 2.0 < hist.quantile(0.75) <= 4.0
        qs = [hist.quantile(q / 20) for q in range(21)]
        assert qs == sorted(qs)

    def test_quantile_overflow_reports_highest_finite_bound(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(1000.0)
        assert hist.quantile(0.5) == 2.0

    def test_merge_rejects_different_bounds(self):
        a = Histogram("a", bounds=(1.0, 2.0))
        b = Histogram("b", bounds=(1.0, 4.0))
        with pytest.raises(ValueError, match="different bounds"):
            a.merge(b)

    def test_snapshot_round_trip(self):
        hist = Histogram("h", bounds=SIZE_BUCKETS)
        for value in (1.0, 7.0, 300.0):
            hist.observe(value)
        back = Histogram.from_snapshot("h", json.loads(json.dumps(hist.to_snapshot())))
        assert back.bounds == hist.bounds
        assert back.counts == hist.counts
        assert back.count == hist.count
        assert back.sum == hist.sum

    def test_from_snapshot_rejects_bucket_mismatch(self):
        snap = Histogram("h", bounds=(1.0, 2.0)).to_snapshot()
        snap["counts"] = [0, 0]  # should be 3 (two bounds + overflow)
        with pytest.raises(ValueError, match="buckets"):
            Histogram.from_snapshot("h", snap)


#: Latencies in [0, 64] seconds cover most of LATENCY_BUCKETS_S plus the
#: overflow bucket (bounds stop at 32 s).
_observations = st.lists(
    st.floats(min_value=0.0, max_value=64.0, allow_nan=False), max_size=200
)
#: Integer-valued observations make `sum` exact, so merge equality can
#: be asserted with `==` instead of approx.
_int_observations = st.lists(st.integers(min_value=0, max_value=64), max_size=200)


class TestExactMerge:
    @settings(max_examples=50, deadline=None)
    @given(a=_observations, b=_observations)
    def test_merge_of_split_streams_matches_single_histogram(self, a, b):
        """Observing a+b into one histogram equals observing the halves
        into two and merging — bucket for bucket, exactly."""
        whole = Histogram("whole")
        for value in a + b:
            whole.observe(value)
        left, right = Histogram("left"), Histogram("right")
        for value in a:
            left.observe(value)
        for value in b:
            right.observe(value)
        left.merge(right)
        assert left.counts == whole.counts
        assert left.count == whole.count

    @settings(max_examples=50, deadline=None)
    @given(a=_int_observations, b=_int_observations)
    def test_merge_through_json_snapshot_is_exact(self, a, b):
        """The sharded-aggregation path: each worker snapshots to JSON,
        the aggregator rebuilds and merges — still exact, sum included."""
        whole = Histogram("whole")
        for value in a + b:
            whole.observe(float(value))
        shards = []
        for chunk in (a, b):
            shard = Histogram("shard")
            for value in chunk:
                shard.observe(float(value))
            shards.append(json.loads(json.dumps(shard.to_snapshot())))
        merged = Histogram.from_snapshot("merged", shards[0])
        merged.merge(Histogram.from_snapshot("other", shards[1]))
        assert merged.counts == whole.counts
        assert merged.count == whole.count
        assert merged.sum == whole.sum
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == whole.quantile(q)


# ------------------------------------------------------------- registry


class TestRegistry:
    def test_first_use_creates_and_len_contains(self):
        registry = MetricRegistry()
        assert len(registry) == 0 and "x" not in registry
        registry.incr("serve.requests_total", 3)
        registry.set_gauge("serve.phase", 2)
        registry.observe("serve.request_latency_seconds", 0.01)
        assert len(registry) == 3
        assert "serve.requests_total" in registry
        assert registry.counter("serve.requests_total").value == 3
        assert registry.gauge("serve.phase").value == 2
        assert registry.histogram("serve.request_latency_seconds").count == 1

    def test_histogram_rebind_with_different_bounds_is_an_error(self):
        registry = MetricRegistry()
        registry.observe("serve.wavefront_size", 4.0, bounds=SIZE_BUCKETS)
        registry.histogram("serve.wavefront_size")  # bounds bind on first use only
        with pytest.raises(ValueError, match="different bounds"):
            registry.histogram("serve.wavefront_size", bounds=(1.0, 2.0))

    def test_merge_counters_add_gauges_overwrite(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.incr("requests_total", 2)
        a.set_gauge("phase", 1)
        b.incr("requests_total", 5)
        b.set_gauge("phase", 3)
        b.observe("latency_seconds", 0.5)
        a.merge(b)
        assert a.counter("requests_total").value == 7
        assert a.gauge("phase").value == 3
        assert a.histogram("latency_seconds").count == 1

    def test_snapshot_round_trip(self):
        registry = MetricRegistry()
        registry.incr("requests_total", 4)
        registry.set_gauge("active", 9)
        registry.observe("latency_seconds", 0.25)
        snap = json.loads(json.dumps(registry.snapshot()))
        back = MetricRegistry.from_snapshot(snap)
        assert back.snapshot() == registry.snapshot()

    def test_expose_text_format(self):
        registry = MetricRegistry()
        registry.incr("serve.requests_total", 3)
        registry.set_gauge("serve.active_sessions", 5)
        registry.observe("latency_seconds", 1.5, bounds=(1.0, 2.0))
        registry.observe("latency_seconds", 0.5, bounds=(1.0, 2.0))
        text = registry.expose_text()
        assert "# TYPE repro_serve_requests_total counter\nrepro_serve_requests_total 3\n" in text
        assert "# TYPE repro_serve_active_sessions gauge\nrepro_serve_active_sessions 5\n" in text
        assert "# TYPE repro_latency_seconds histogram" in text
        # Buckets are cumulative with the conventional +Inf terminator.
        assert 'repro_latency_seconds_bucket{le="1.0"} 1' in text
        assert 'repro_latency_seconds_bucket{le="2.0"} 2' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_latency_seconds_sum 2.0" in text
        assert "repro_latency_seconds_count 2" in text

    def test_expose_text_empty_registry(self):
        assert MetricRegistry().expose_text() == ""


# ----------------------------------------------------------------- sink


class TestSnapshotSink:
    def test_writes_schema_v2_meta_then_metrics_lines(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        registry = MetricRegistry()
        with MetricsSnapshotSink(path, registry, interval_s=0.0, meta={"tool": "t"}) as sink:
            registry.incr("requests_total")
            sink.write()
            registry.incr("requests_total")
            sink.write()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["version"] == SCHEMA_VERSION == 2
        assert [line["seq"] for line in lines[1:]] == [0, 1]
        assert [line["counters"]["requests_total"] for line in lines[1:]] == [1, 2]

    def test_maybe_write_rate_limits(self, tmp_path):
        registry = MetricRegistry()
        with MetricsSnapshotSink(tmp_path / "m.jsonl", registry, interval_s=3600.0) as sink:
            assert sink.maybe_write()  # first call always writes
            assert not sink.maybe_write()  # inside the interval
            assert sink.seq == 1

    def test_write_after_close_raises_and_close_is_idempotent(self, tmp_path):
        sink = MetricsSnapshotSink(tmp_path / "m.jsonl", MetricRegistry())
        sink.close()
        sink.close()
        with pytest.raises(RuntimeError, match="closed"):
            sink.write()

    def test_load_jsonl_round_trips_snapshots(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        registry = MetricRegistry()
        registry.observe("latency_seconds", 0.125)
        with MetricsSnapshotSink(path, registry, interval_s=0.0) as sink:
            sink.write()
        run = load_jsonl(path)
        assert len(run.metrics) == 1
        back = MetricRegistry.from_snapshot(run.metrics[0])
        assert back.histogram("latency_seconds").count == 1
        assert back.expose_text() == registry.expose_text()

    def test_v1_files_still_load(self, tmp_path):
        """Schema bump is backwards compatible: version-1 files (no
        metrics lines) parse, with an empty `metrics` list."""
        path = tmp_path / "v1.jsonl"
        path.write_text('{"type": "meta", "version": 1, "meta": {"command": "demo"}}\n')
        run = load_jsonl(path)
        assert run.meta["command"] == "demo"
        assert run.metrics == []

    def test_negative_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="interval_s"):
            MetricsSnapshotSink(tmp_path / "m.jsonl", MetricRegistry(), interval_s=-1.0)


# -------------------------------------------------- active-registry runtime


class TestRuntime:
    def test_helpers_are_noops_when_disabled(self):
        assert not metrics.enabled()
        metrics.incr("requests_total")
        metrics.set_gauge("phase", 1)
        metrics.observe("latency_seconds", 0.5)
        assert metrics.get_registry() is None

    def test_collecting_routes_helpers_and_restores(self):
        registry = MetricRegistry()
        with collecting(registry) as active:
            assert active is registry and metrics.enabled()
            metrics.incr("requests_total", 2)
            metrics.set_gauge("phase", 3)
            metrics.observe("wavefront_size", 8.0, bounds=SIZE_BUCKETS)
        assert not metrics.enabled()
        assert registry.counter("requests_total").value == 2
        assert registry.gauge("phase").value == 3
        assert registry.histogram("wavefront_size").count == 1

    def test_collecting_restores_previous_registry_on_error(self):
        outer = MetricRegistry()
        with collecting(outer):
            with pytest.raises(RuntimeError), collecting(MetricRegistry()):
                raise RuntimeError("boom")
            assert metrics.get_registry() is outer

    def test_disabled_path_costs_a_single_attribute_check(self):
        """The zero-overhead contract: with no active registry, `incr`
        and `observe` are one global read and a `None` check — within a
        small constant factor of calling an empty function.  Best-of
        timing with a generous 5x bound keeps this meaningful without
        being flaky on loaded CI machines."""

        def empty(name: str, value: float = 1) -> None:
            pass

        assert metrics.get_registry() is None
        number, repeat = 20_000, 7

        def best(stmt: str, func) -> float:
            return min(
                timeit.repeat(stmt, globals={"f": func}, number=number, repeat=repeat)
            )

        t_empty = best("f('serve.requests_total')", empty)
        t_incr = best("f('serve.requests_total')", metrics.incr)
        t_observe = best("f('serve.request_latency_seconds', 0.5)", metrics.observe)
        assert t_incr < 5 * t_empty, (t_incr, t_empty)
        assert t_observe < 5 * t_empty, (t_observe, t_empty)


# ------------------------------------------------------ obs top rendering


class TestRenderFrame:
    def _snapshot(self, seq: int, t: float, requests: int) -> dict:
        registry = MetricRegistry()
        registry.incr("serve.requests_total", requests)
        registry.set_gauge("serve.active_sessions", 7)
        for _ in range(requests):
            registry.observe("serve.request_latency_seconds", 0.004)
            registry.observe("serve.wavefront_size", 16.0, bounds=SIZE_BUCKETS)
        return {"type": "metrics", "seq": seq, "t": t, **registry.snapshot()}

    def test_single_frame_lists_all_three_kinds(self):
        frame = metrics.render_frame(self._snapshot(0, 1.0, 10))
        assert "snapshot #0" in frame
        assert "serve.requests_total" in frame
        assert "serve.active_sessions" in frame
        assert "serve.request_latency_seconds" in frame
        assert "p50" in frame and "p99" in frame

    def test_rates_from_previous_snapshot(self):
        frame = metrics.render_frame(
            self._snapshot(1, 3.0, 30), previous=self._snapshot(0, 1.0, 10)
        )
        assert "(rates over 2.00s)" in frame
        assert "10.0" in frame  # (30 - 10) requests / 2 s

    def test_latency_cells_scaled_size_cells_plain(self):
        frame = metrics.render_frame(self._snapshot(0, 1.0, 5))
        latency_row = next(
            line for line in frame.splitlines() if "request_latency_seconds" in line
        )
        size_row = next(line for line in frame.splitlines() if "wavefront_size" in line)
        assert "ms" in latency_row  # seconds histograms render human-scaled
        assert "16.0" in size_row  # size histograms stay unscaled
