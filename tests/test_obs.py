"""Tests for the run-telemetry layer (repro.obs).

Covers the span tree (nesting, timing monotonicity, probe metering),
counter accumulation, the JSONL schema round-trip, and — the load-bearing
guarantee — that telemetry-off runs are bitwise identical to the
pre-instrumentation implementation, pinned by golden digests captured
from the seed code.
"""

import hashlib

import numpy as np
import pytest

from repro import obs
from repro.billboard.accounting import PhaseLedger, ProbeStats
from repro.billboard.oracle import ProbeOracle
from repro.billboard.trace import ProbeTrace
from repro.core.main import find_preferences, find_preferences_unknown_d
from repro.engine import run_find_preferences_engine
from repro.obs.schema import SCHEMA_VERSION
from repro.workloads.planted import planted_instance


@pytest.fixture(autouse=True)
def no_leaked_recorder():
    """Every test starts and ends with telemetry disabled."""
    obs.set_recorder(None)
    yield
    obs.set_recorder(None)


class TestSpanTree:
    def test_disabled_returns_null_span(self):
        assert obs.span("x") is obs.NULL_SPAN
        with obs.span("x") as sp:
            sp.set(ignored=True)  # chainable no-op

    def test_nesting_builds_tree(self):
        rec = obs.Recorder()
        with obs.recording(rec):
            with obs.span("root"):
                with obs.span("a"):
                    with obs.span("leaf"):
                        pass
                with obs.span("b"):
                    pass
        assert [s.name for s in rec.roots] == ["root"]
        root = rec.roots[0]
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["leaf"]
        assert all(s.parent is root for s in root.children)

    def test_timing_monotone_and_nested(self):
        rec = obs.Recorder()
        with obs.recording(rec):
            with obs.span("root"):
                with obs.span("child"):
                    pass
        root, child = rec.spans
        assert root.t_start <= child.t_start <= child.t_end <= root.t_end
        assert root.duration >= child.duration >= 0.0

    def test_start_order_is_span_id_order(self):
        rec = obs.Recorder()
        with obs.recording(rec):
            for name in ("a", "b", "c"):
                with obs.span(name):
                    pass
        assert [s.span_id for s in rec.spans] == [0, 1, 2]
        assert [s.name for s in rec.spans] == ["a", "b", "c"]

    def test_exception_closes_span_and_tags_error(self):
        rec = obs.Recorder()
        with obs.recording(rec):
            with pytest.raises(RuntimeError):
                with obs.span("boom"):
                    raise RuntimeError("x")
        sp = rec.spans[0]
        assert sp.t_end is not None
        assert sp.attrs["error"] == "RuntimeError"
        assert rec.current_span is None

    def test_attrs_and_set(self):
        rec = obs.Recorder()
        with obs.recording(rec):
            with obs.span("s", alpha=0.5) as sp:
                sp.set(branch="zero_radius")
        assert rec.spans[0].attrs == {"alpha": 0.5, "branch": "zero_radius"}


class TestProbeMetering:
    def test_span_records_probe_delta(self):
        oracle = ProbeOracle(np.zeros((4, 8), dtype=np.int8))
        rec = obs.Recorder()
        with obs.recording(rec):
            with obs.span("outer", oracle=oracle):
                oracle.probe_all(0, np.arange(8))
                with obs.span("inner", oracle=oracle):
                    oracle.probe(1, 0)
        outer, inner = rec.spans
        assert outer.probes == 9 and outer.probe_rounds == 8
        assert inner.probes == 1
        assert outer.probes_self == 8
        assert inner.probes_self == 1

    def test_exclusive_deltas_sum_to_total(self):
        inst = planted_instance(64, 64, 0.5, 2, rng=3)
        oracle = ProbeOracle(inst)
        rec = obs.Recorder()
        with obs.recording(rec):
            with obs.span("run", oracle=oracle):
                find_preferences(oracle, 0.5, 2, rng=4)
        run = obs.run_from_recorder(rec)
        assert run.probes_total == oracle.stats().total
        assert run.probes_accounted == oracle.stats().total

    def test_unmetered_span_has_null_probes(self):
        rec = obs.Recorder()
        with obs.recording(rec):
            with obs.span("no-oracle"):
                pass
        assert rec.spans[0].probes is None
        assert rec.spans[0].probes_self is None

    def test_unmetered_root_does_not_hide_metered_descendants(self):
        # report/experiment wrappers open spans without an oracle; the
        # run total must come from the top-most *metered* spans below.
        oracle = ProbeOracle(np.zeros((2, 4), dtype=np.int8))
        rec = obs.Recorder()
        with obs.recording(rec):
            with obs.span("experiment/E1"):
                with obs.span("trial", oracle=oracle):
                    oracle.probe_all(0, np.arange(4))
        run = obs.run_from_recorder(rec)
        assert run.probes_total == 4
        assert run.probes_accounted == 4
        assert "4 / 4" in obs.render_summary(run)


class TestCounters:
    def test_counter_accumulates(self):
        c = obs.Counters()
        c.incr("x")
        c.incr("x", 4)
        c.incr("y", 2.5)
        assert c.get("x") == 5
        assert c.get("y") == 2.5
        assert c.get("missing") == 0

    def test_gauge_last_write_wins(self):
        c = obs.Counters()
        c.gauge("g", 1)
        c.gauge("g", 7)
        assert c.get("g") == 7
        assert c.as_dict() == {"counters": {}, "gauges": {"g": 7}}

    def test_module_helpers_accumulate_on_active_recorder(self):
        rec = obs.Recorder()
        with obs.recording(rec):
            obs.incr("hits")
            obs.incr("hits", 2)
            obs.gauge("level", 9)
        assert rec.counters.get("hits") == 3
        assert rec.counters.get("level") == 9

    def test_helpers_are_noops_when_disabled(self):
        obs.incr("nowhere")
        obs.gauge("nowhere", 1)
        obs.event("nowhere")
        assert not obs.enabled()


class TestEvents:
    def test_event_attaches_to_open_span(self):
        rec = obs.Recorder()
        with obs.recording(rec):
            obs.event("outside")
            with obs.span("s"):
                obs.event("inside", detail=1)
        outside, inside = rec.events
        assert outside.span_id is None
        assert inside.span_id == rec.spans[0].span_id
        assert inside.attrs == {"detail": 1}
        assert [e.seq for e in rec.events] == [0, 1]


def _build_rich_recorder() -> obs.Recorder:
    oracle = ProbeOracle(np.zeros((4, 8), dtype=np.int8))
    rec = obs.Recorder(meta={"command": "test", "seed": 1})
    with obs.recording(rec):
        with obs.span("root", oracle=oracle, alpha=0.5):
            oracle.probe_all(0, np.arange(8))
            with obs.span("child", oracle=oracle, D=2):
                oracle.probe(1, 3)
            obs.event("milestone", step=1)
        obs.incr("oracle.checks", 3)
        obs.gauge("temperature", 21.5)
    return rec


class TestJsonlRoundTrip:
    def test_round_trip_reproduces_tree(self, tmp_path):
        rec = _build_rich_recorder()
        path = tmp_path / "run.jsonl"
        rec.dump_jsonl(path)
        loaded = obs.load_jsonl(path)
        direct = obs.run_from_recorder(rec)
        assert loaded.meta == direct.meta
        assert len(loaded.spans) == len(direct.spans)
        for a, b in zip(loaded.spans, direct.spans):
            assert (a.span_id, a.parent_id, a.name) == (b.span_id, b.parent_id, b.name)
            assert a.t_start == b.t_start and a.t_end == b.t_end  # exact float round-trip
            assert a.probes == b.probes
            assert a.probe_rounds == b.probe_rounds
            assert a.probes_self == b.probes_self
            assert a.attrs == b.attrs
            assert [c.span_id for c in a.children] == [c.span_id for c in b.children]
        assert loaded.counters == direct.counters
        assert loaded.gauges == direct.gauges
        assert loaded.events == direct.events

    def test_every_line_is_json(self, tmp_path):
        import json

        rec = _build_rich_recorder()
        path = tmp_path / "run.jsonl"
        rec.dump_jsonl(path)
        lines = path.read_text().strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["type"] == "meta"
        assert parsed[0]["version"] == SCHEMA_VERSION
        assert {p["type"] for p in parsed} == {"meta", "span", "event", "counter", "gauge"}

    def test_rejects_newer_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"type": "meta", "version": 999, "meta": {}}\n')
        with pytest.raises(ValueError, match="schema version"):
            obs.load_jsonl(path)

    def test_rejects_file_without_meta(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        path.write_text('{"type": "counter", "name": "x", "value": 1}\n')
        with pytest.raises(ValueError, match="missing meta"):
            obs.load_jsonl(path)

    def test_summary_renders_phase_table(self, tmp_path):
        rec = _build_rich_recorder()
        path = tmp_path / "run.jsonl"
        rec.dump_jsonl(path)
        text = obs.render_summary(obs.load_jsonl(path))
        assert "root" in text and "child" in text
        assert "probe accounting: 9 / 9" in text and "(exact)" in text


class TestLedgerPhaseContextManager:
    def test_phase_closes_on_exception(self):
        oracle = ProbeOracle(np.zeros((2, 4), dtype=np.int8))
        with pytest.raises(RuntimeError):
            with oracle.ledger.phase("p", oracle):
                oracle.probe(0, 0)
                raise RuntimeError("mid-phase")
        # The phase is closed, its probes attributed — and reopenable.
        assert oracle.ledger.get("p").total == 1
        with oracle.ledger.phase("p", oracle):
            oracle.probe(0, 1)
        assert oracle.ledger.get("p").total == 2

    def test_ledger_phase_matches_start_finish(self):
        ledger = PhaseLedger()
        ledger.start("manual", ProbeStats(np.asarray([0, 0])))
        ledger.finish("manual", ProbeStats(np.asarray([3, 1])))
        oracle = ProbeOracle(np.zeros((2, 4), dtype=np.int8))
        with oracle.ledger.phase("ctx", oracle):
            oracle.probe_all(0, np.arange(3))
            oracle.probe(1, 0)
        assert oracle.ledger.get("ctx").per_player.tolist() == [3, 1]
        assert ledger.get("manual").per_player.tolist() == [3, 1]

    def test_oracle_phase_unifies_ledger_and_span(self):
        oracle = ProbeOracle(np.zeros((2, 4), dtype=np.int8))
        rec = obs.Recorder()
        with obs.recording(rec):
            with oracle.phase("work"):
                oracle.probe(0, 0)
        assert oracle.ledger.get("work").total == 1
        assert [s.name for s in rec.spans] == ["work"]
        assert rec.spans[0].probes == 1

    def test_oracle_phase_without_recorder_only_feeds_ledger(self):
        oracle = ProbeOracle(np.zeros((2, 4), dtype=np.int8))
        with oracle.phase("quiet"):
            oracle.probe(0, 0)
        assert oracle.ledger.get("quiet").total == 1


def _digest(*arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()[:16]


#: Golden digests of sha256(outputs || per-player counts), captured by
#: running the PRE-INSTRUMENTATION seed code (commit b213d42) with the
#: exact configurations below.  Telemetry must never change them.
GOLDEN = {
    "zero_radius": ("9d2b88ed3cc23bca", 2048),
    "small_radius": ("c7ca0a9af69f160b", 65536),
    "large_radius": ("54bc2871ce5b84ea", 14112),
    "unknown_d": ("23dbf4633d0f463f", 166391),
}

_CONFIGS = {
    "zero_radius": (0, False),
    "small_radius": (2, False),
    "large_radius": (40, False),
    "unknown_d": (2, True),
}


def _run_config(label: str):
    D, unknown = _CONFIGS[label]
    inst = planted_instance(128, 128, 0.5, D, rng=13)
    oracle = ProbeOracle(inst)
    trace = ProbeTrace()
    oracle.attach_trace(trace)
    if unknown:
        result = find_preferences_unknown_d(oracle, 0.5, rng=17, d_max=4)
    else:
        result = find_preferences(oracle, 0.5, D, rng=17)
    return result, oracle, trace


class TestBitwiseIdentityWithSeed:
    """Telemetry-off runs are bitwise identical to the pre-obs seed code."""

    @pytest.mark.parametrize("label", sorted(GOLDEN))
    def test_matches_pre_instrumentation_golden(self, label):
        result, oracle, _ = _run_config(label)
        digest, total = GOLDEN[label]
        assert oracle.stats().total == total
        assert _digest(result.outputs, oracle.stats().per_player) == digest

    def test_engine_matches_pre_instrumentation_golden(self):
        inst = planted_instance(64, 64, 0.5, 2, rng=5)
        oracle = ProbeOracle(inst)
        outputs, engine_result = run_find_preferences_engine(oracle, 0.5, 2, rng=21)
        assert _digest(outputs, oracle.stats().per_player) == "73c88d9a47cca1ca"
        assert oracle.stats().total == 12288
        assert engine_result.rounds == 201


class TestTelemetryOnIsObservationOnly:
    """Recording changes nothing: outputs, probe counts, probe order, RNG."""

    @pytest.mark.parametrize("label", ["zero_radius", "large_radius"])
    def test_recorded_run_identical_to_quiet_run(self, label):
        quiet_result, quiet_oracle, quiet_trace = _run_config(label)
        rec = obs.Recorder()
        with obs.recording(rec):
            with obs.span("run"):
                loud_result, loud_oracle, loud_trace = _run_config(label)
        assert np.array_equal(quiet_result.outputs, loud_result.outputs)
        assert np.array_equal(
            quiet_oracle.stats().per_player, loud_oracle.stats().per_player
        )
        # The full probe sequence — every (player, object, value, charged)
        # event in order — is the strongest observable proxy for "same
        # RNG draws": any divergence in randomness reorders it.
        quiet_cols = quiet_trace.as_arrays()
        loud_cols = loud_trace.as_arrays()
        for key in quiet_cols:
            assert np.array_equal(quiet_cols[key], loud_cols[key]), key
        assert len(rec.spans) >= 1

    def test_engine_recorded_run_identical(self):
        inst = planted_instance(64, 64, 0.5, 2, rng=5)
        o1 = ProbeOracle(inst)
        out1, r1 = run_find_preferences_engine(o1, 0.5, 2, rng=21)
        rec = obs.Recorder()
        o2 = ProbeOracle(inst)
        with obs.recording(rec):
            out2, r2 = run_find_preferences_engine(o2, 0.5, 2, rng=21)
        assert np.array_equal(out1, out2)
        assert np.array_equal(o1.stats().per_player, o2.stats().per_player)
        assert (r1.rounds, r1.probe_rounds) == (r2.rounds, r2.probe_rounds)
        engine_spans = [s for s in rec.spans if s.name == "engine/run"]
        assert engine_spans and engine_spans[0].probes == o2.stats().total
        assert rec.counters.get("engine.rounds") == r2.rounds
