"""Kill-and-resume pinning for the service snapshot layer.

A service killed at any point and restored from its latest snapshot must
finish **bitwise-identical** — outputs and per-player probe counts — to
a service that was never interrupted.  Snapshots are cut at phase
barriers, so a mid-phase kill rolls back to the last barrier and the
restored service re-draws the interrupted phase coin-for-coin.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.io import FORMAT_VERSION
from repro.serve import (
    MicroBatchRouter,
    RouterConfig,
    ServeConfig,
    ServeService,
    load_service,
    save_service,
)
from repro.workloads.registry import make_instance

N = 48
SEED = 11
CONFIG = dict(seed=SEED, max_phases=2, d_max=4)
ROUTER = dict(window=16, probes_per_request=8)


@pytest.fixture(scope="module")
def instance():
    return make_instance("planted", N, N, 0.5, 2, rng=5)


@pytest.fixture(scope="module")
def reference(instance):
    """A never-interrupted service run to completion."""
    service = ServeService(instance, config=ServeConfig(**CONFIG))  # repro: noqa[RPL012]
    outputs = MicroBatchRouter(service, config=RouterConfig(**ROUTER)).run_to_completion()  # repro: noqa[RPL012]
    return outputs, service.oracle.stats().per_player.copy(), list(service.completed)


def _rewrite_meta(path, **updates):
    """Patch the embedded JSON metadata of an .npz archive in place."""
    with np.load(path) as data:
        arrays = {name: data[name] for name in data.files}
    meta = json.loads(bytes(arrays["meta_json"]).decode())
    meta.update(updates)
    arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


class TestKillAndResume:
    @pytest.mark.parametrize("rounds", [0, 1, 3, 9])
    def test_resume_is_bitwise_identical(self, instance, reference, tmp_path, rounds):
        """Kill after *rounds* request rounds; resume finishes the same bits."""
        ref_outputs, ref_counts, ref_completed = reference
        service = ServeService(instance, config=ServeConfig(**CONFIG))  # repro: noqa[RPL012]
        router = MicroBatchRouter(service, config=RouterConfig(**ROUTER))  # repro: noqa[RPL012]
        for _ in range(rounds):
            for session in service.sessions:
                if session.status not in ("complete", "drained"):
                    router.submit(session.player)
            router.flush()
        path = save_service(tmp_path / "svc.npz", service)
        # "Kill": drop the live service entirely; restore from disk.
        restored = load_service(path)
        outputs = MicroBatchRouter(  # repro: noqa[RPL012]
            restored, config=RouterConfig(**ROUTER)
        ).run_to_completion()
        assert np.array_equal(outputs, ref_outputs)
        assert np.array_equal(restored.oracle.stats().per_player, ref_counts)
        assert restored.completed == ref_completed

    def test_resume_with_different_router_still_identical(
        self, instance, reference, tmp_path
    ):
        """The restore contract is per-service, not per-router."""
        ref_outputs, ref_counts, _ = reference
        service = ServeService(instance, config=ServeConfig(**CONFIG))  # repro: noqa[RPL012]
        router = MicroBatchRouter(service, config=RouterConfig(**ROUTER))  # repro: noqa[RPL012]
        for _ in range(5):
            for session in service.sessions:
                if session.status not in ("complete", "drained"):
                    router.submit(session.player)
            router.flush()
        restored = load_service(save_service(tmp_path / "svc.npz", service))
        outputs = MicroBatchRouter(  # repro: noqa[RPL012]
            restored, config=RouterConfig(window=3, probes_per_request=2, micro_batch=False)
        ).run_to_completion()
        assert np.array_equal(outputs, ref_outputs)
        assert np.array_equal(restored.oracle.stats().per_player, ref_counts)

    def test_finished_service_roundtrip(self, instance, reference, tmp_path):
        ref_outputs, ref_counts, ref_completed = reference
        service = ServeService(instance, config=ServeConfig(**CONFIG))  # repro: noqa[RPL012]
        MicroBatchRouter(service, config=RouterConfig(**ROUTER)).run_to_completion()  # repro: noqa[RPL012]
        restored = load_service(save_service(tmp_path / "done.npz", service))
        assert restored.finished
        assert restored.stage == "done"
        assert restored.sessions.count("complete") == N
        assert np.array_equal(restored.outputs(), ref_outputs)
        assert np.array_equal(restored.oracle.stats().per_player, ref_counts)
        assert restored.completed == ref_completed

    def test_drained_service_roundtrip(self, instance, tmp_path):
        service = ServeService(instance, config=ServeConfig(budget=80, **CONFIG))  # repro: noqa[RPL012]
        outputs = MicroBatchRouter(  # repro: noqa[RPL012]
            service, config=RouterConfig(**ROUTER)
        ).run_to_completion()
        assert service.stage == "drained"
        restored = load_service(save_service(tmp_path / "drained.npz", service))
        assert restored.stage == "drained"
        assert restored.exhausted
        assert restored.sessions.count("drained") == N
        assert np.array_equal(restored.outputs(), outputs)
        assert np.array_equal(
            restored.oracle.stats().per_player, service.oracle.stats().per_player
        )


class TestArchiveFormat:
    def _snapshot(self, instance, tmp_path):
        service = ServeService(instance, config=ServeConfig(seed=SEED, max_phases=1, d_max=2))  # repro: noqa[RPL012]
        MicroBatchRouter(service, config=RouterConfig(**ROUTER)).run_to_completion()  # repro: noqa[RPL012]
        return save_service(tmp_path / "svc.npz", service)

    def test_suffix_added(self, instance, tmp_path):
        service = ServeService(instance, config=ServeConfig(seed=SEED, max_phases=1, d_max=2))  # repro: noqa[RPL012]
        path = save_service(tmp_path / "noext", service)
        assert path.suffix == ".npz"
        assert load_service(path).n_players == N

    def test_archive_carries_current_format_version(self, instance, tmp_path):
        path = self._snapshot(instance, tmp_path)
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta_json"]).decode())
        assert meta["version"] == FORMAT_VERSION
        assert meta["kind"] == "service"

    def test_kind_mismatch_rejected(self, instance, tmp_path):
        from repro.io import save_instance

        path = save_instance(tmp_path / "inst.npz", instance)
        with pytest.raises(ValueError, match="does not contain a service"):
            load_service(path)

    def test_version2_dense_hidden_still_loads(self, instance, tmp_path):
        """Format-2 archives (dense ``hidden``) restore bit-identically."""
        from repro.metrics.bitpack import unpack_rows

        path = self._snapshot(instance, tmp_path)
        reference = load_service(path)
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        meta = json.loads(bytes(arrays["meta_json"]).decode())
        hidden_shape = meta.pop("hidden_shape")
        meta["version"] = 2
        arrays["hidden"] = unpack_rows(
            arrays.pop("hidden_packed"), int(hidden_shape[1])
        )
        arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        restored = load_service(path)
        assert np.array_equal(restored.outputs(), reference.outputs())
        assert np.array_equal(
            restored.oracle.stats().per_player, reference.oracle.stats().per_player
        )
        assert restored.oracle.checkpoint()["prefs"].tolist() == (
            reference.oracle.checkpoint()["prefs"].tolist()
        )

    def test_archive_hidden_is_bitpacked(self, instance, tmp_path):
        path = self._snapshot(instance, tmp_path)
        with np.load(path) as data:
            assert "hidden" not in data.files
            assert data["hidden_packed"].dtype == np.uint8
            assert data["hidden_packed"].shape == (N, (N + 7) // 8)

    def test_future_version_rejected(self, instance, tmp_path):
        path = self._snapshot(instance, tmp_path)
        _rewrite_meta(path, version=FORMAT_VERSION + 1)
        with pytest.raises(ValueError, match="format version"):
            load_service(path)

    def test_config_survives_roundtrip(self, instance, tmp_path):
        config = ServeConfig(seed=SEED, max_phases=1, d_max=2, budget=None)
        service = ServeService(instance, config=config)  # repro: noqa[RPL012]
        MicroBatchRouter(service, config=RouterConfig(**ROUTER)).run_to_completion()  # repro: noqa[RPL012]
        restored = load_service(save_service(tmp_path / "svc.npz", service))
        assert restored.config.seed == config.seed
        assert restored.config.max_phases == config.max_phases
        assert restored.config.d_max == config.d_max
        assert restored.config.budget == config.budget
        assert restored.params == service.params
