"""Tests for workload generators (planted, nested, mixtures, adversarial, noise)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.hamming import diameter
from repro.workloads.adversarial import adversarial_instance, anti_spectral_instance
from repro.workloads.mixtures import mixture_instance
from repro.workloads.noise import flip_noise
from repro.workloads.planted import nested_instance, planted_instance


class TestPlanted:
    def test_shape_and_labels(self):
        inst = planted_instance(50, 40, 0.5, 2, rng=0)
        assert inst.shape == (50, 40)
        assert len(inst.communities) == 1
        assert inst.communities[0].label == "community-0"

    def test_community_size_at_least_alpha_n(self):
        inst = planted_instance(100, 100, 0.3, 0, rng=1)
        assert inst.main_community().size >= 30

    @given(
        st.integers(10, 60),
        st.integers(10, 60),
        st.sampled_from([0.25, 0.5, 1.0]),
        st.integers(0, 8),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_planted_diameter_within_target(self, n, m, alpha, D, seed):
        inst = planted_instance(n, m, alpha, D, rng=seed)
        comm = inst.main_community()
        measured = diameter(inst.prefs[comm.members])
        assert measured <= D
        assert comm.diameter == measured

    def test_d_zero_members_identical(self):
        inst = planted_instance(30, 30, 0.5, 0, rng=2)
        rows = inst.prefs[inst.main_community().members]
        assert (rows == rows[0]).all()

    def test_multiple_communities_disjoint(self):
        inst = planted_instance(100, 50, 0.25, 2, n_communities=3, rng=3)
        assert len(inst.communities) == 3
        all_members = np.concatenate([c.members for c in inst.communities])
        assert np.unique(all_members).size == all_members.size

    def test_too_many_communities_rejected(self):
        with pytest.raises(ValueError):
            planted_instance(10, 10, 0.5, 0, n_communities=3, rng=0)

    def test_unique_background(self):
        inst = planted_instance(60, 60, 0.25, 0, background="unique", rng=4)
        assert inst.shape == (60, 60)

    def test_unknown_background_rejected(self):
        with pytest.raises(ValueError):
            planted_instance(10, 10, 0.5, 0, background="weird")

    def test_reproducible(self):
        a = planted_instance(30, 30, 0.5, 2, rng=9)
        b = planted_instance(30, 30, 0.5, 2, rng=9)
        assert np.array_equal(a.prefs, b.prefs)

    def test_custom_name(self):
        inst = planted_instance(10, 10, 0.5, 0, rng=0, name="custom")
        assert inst.name == "custom"


class TestNested:
    def test_rings_nested(self):
        inst = nested_instance(80, 60, [2, 8], [0.3, 0.6], rng=5)
        rings = {c.label: c for c in inst.communities}
        inner = set(rings["ring-0"].members.tolist())
        outer = set(rings["ring-1"].members.tolist())
        assert inner <= outer

    def test_ring_diameters_bounded(self):
        inst = nested_instance(80, 60, [2, 8], [0.3, 0.6], rng=6)
        for c, radius in zip(inst.communities, [2, 8]):
            assert c.diameter <= radius

    def test_rejects_nonincreasing_radii(self):
        with pytest.raises(ValueError):
            nested_instance(20, 20, [8, 2], [0.3, 0.6])

    def test_rejects_nonincreasing_fractions(self):
        with pytest.raises(ValueError):
            nested_instance(20, 20, [2, 8], [0.6, 0.3])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            nested_instance(20, 20, [2], [0.3, 0.6])


class TestMixture:
    def test_every_type_inhabited(self):
        inst = mixture_instance(40, 40, 5, rng=7)
        assert len(inst.communities) == 5
        assert all(c.size >= 1 for c in inst.communities)

    def test_zero_noise_types_exact(self):
        inst = mixture_instance(40, 64, 3, noise=0.0, rng=8)
        for c in inst.communities:
            assert c.diameter == 0
            assert (inst.prefs[c.members] == c.center).all()

    def test_noise_grows_diameter(self):
        inst = mixture_instance(60, 128, 2, noise=0.2, rng=9)
        assert max(c.diameter for c in inst.communities) > 0

    def test_weights_respected(self):
        inst = mixture_instance(200, 30, 2, weights=[0.9, 0.1], rng=10)
        sizes = sorted(c.size for c in inst.communities)
        assert sizes[1] > sizes[0] * 3

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            mixture_instance(10, 10, 2, weights=[1.0])
        with pytest.raises(ValueError):
            mixture_instance(10, 10, 2, weights=[-1.0, 2.0])

    def test_more_types_than_players_rejected(self):
        with pytest.raises(ValueError):
            mixture_instance(3, 10, 5)

    def test_type_separation(self):
        inst = mixture_instance(20, 64, 4, min_type_distance=16, rng=11)
        from repro.metrics.hamming import pairwise_hamming

        centers = np.asarray([c.center for c in inst.communities])
        d = pairwise_hamming(centers)
        off = d[~np.eye(4, dtype=bool)]
        assert off.min() >= 16

    def test_impossible_separation_rejected(self):
        with pytest.raises(ValueError):
            mixture_instance(10, 8, 2, min_type_distance=20)


class TestAdversarial:
    def test_community_planted(self):
        inst = adversarial_instance(100, 60, 0.3, 4, decoys=2, rng=12)
        comm = inst.main_community()
        assert comm.size >= 30
        assert comm.diameter <= 4

    def test_decoys_below_popularity_threshold(self):
        inst = adversarial_instance(100, 60, 0.3, 4, decoys=2, rng=13)
        decoys = [c for c in inst.communities if c.label.startswith("decoy")]
        assert len(decoys) == 2
        threshold = int(np.floor(0.3 * 100 / 5))
        assert all(d.size < threshold for d in decoys)

    def test_population_limit(self):
        with pytest.raises(ValueError):
            adversarial_instance(10, 10, 0.9, 2, decoys=20)

    def test_anti_spectral_name(self):
        inst = anti_spectral_instance(50, 50, 0.5, 4, rng=14)
        assert inst.name.startswith("anti_spectral")
        assert inst.main_community().diameter <= 4


class TestNoise:
    def test_zero_noise_identity(self):
        base = planted_instance(30, 30, 0.5, 0, rng=15)
        noisy = flip_noise(base, 0.0, rng=0)
        assert np.array_equal(base.prefs, noisy.prefs)

    def test_full_flip_complements(self):
        base = planted_instance(20, 20, 0.5, 0, rng=16)
        flipped = flip_noise(base, 1.0, rng=0)
        assert np.array_equal(flipped.prefs, 1 - base.prefs)

    def test_diameters_remeasured(self):
        base = planted_instance(40, 100, 0.5, 0, rng=17)
        noisy = flip_noise(base, 0.2, rng=1)
        assert noisy.main_community().diameter > 0

    def test_membership_preserved(self):
        base = planted_instance(40, 40, 0.5, 2, rng=18)
        noisy = flip_noise(base, 0.1, rng=2)
        assert np.array_equal(base.main_community().members, noisy.main_community().members)

    def test_name_annotated(self):
        base = planted_instance(10, 10, 0.5, 0, rng=19)
        assert "noise" in flip_noise(base, 0.1, rng=3).name
