"""Tests for the wildcard-aware d̃ metric (Notation 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.hamming import hamming
from repro.metrics.tilde import (
    ball_sizes,
    tilde_ball,
    tilde_dist,
    tilde_dist_to_each,
    tilde_pairwise,
    wildcard_count,
)
from repro.utils.validation import WILDCARD

value_matrix = arrays(
    np.int8,
    st.tuples(st.integers(1, 10), st.integers(1, 20)),
    elements=st.sampled_from([0, 1, WILDCARD]),
)
value_pair = st.integers(1, 48).flatmap(
    lambda L: st.tuples(
        arrays(np.int8, L, elements=st.sampled_from([0, 1, WILDCARD])),
        arrays(np.int8, L, elements=st.sampled_from([0, 1, WILDCARD])),
    )
)


class TestTildeDist:
    def test_matches_hamming_without_wildcards(self):
        x = np.asarray([0, 1, 1, 0], dtype=np.int8)
        y = np.asarray([1, 1, 0, 0], dtype=np.int8)
        assert tilde_dist(x, y) == hamming(x, y) == 2

    def test_wildcard_never_counts(self):
        x = np.asarray([WILDCARD, 1], dtype=np.int8)
        y = np.asarray([0, 0], dtype=np.int8)
        assert tilde_dist(x, y) == 1

    def test_both_wildcard(self):
        x = np.asarray([WILDCARD], dtype=np.int8)
        assert tilde_dist(x, x) == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            tilde_dist(np.asarray([0]), np.asarray([0, 1]))

    @given(value_pair)
    def test_symmetry(self, pair):
        x, y = pair
        assert tilde_dist(x, y) == tilde_dist(y, x)

    @given(value_pair)
    def test_upper_bounded_by_hamming_on_binary(self, pair):
        # Replacing any entry with "?" can only decrease d̃.
        x, y = pair
        bx = np.where(x == WILDCARD, 0, x).astype(np.int8)
        by = np.where(y == WILDCARD, 0, y).astype(np.int8)
        assert tilde_dist(x, y) <= hamming(bx, by)

    @given(value_pair, st.integers(0, 47))
    def test_adding_wildcard_monotone(self, pair, idx):
        x, y = pair
        idx = idx % x.size
        d_before = tilde_dist(x, y)
        x2 = x.copy()
        x2[idx] = WILDCARD
        assert tilde_dist(x2, y) <= d_before


class TestTildeVectorized:
    @given(value_matrix)
    @settings(max_examples=40)
    def test_to_each_matches_scalar(self, m):
        v = m[0]
        expected = [tilde_dist(v, row) for row in m]
        assert tilde_dist_to_each(v, m).tolist() == expected

    @given(value_matrix)
    @settings(max_examples=40)
    def test_pairwise_matches_scalar(self, m):
        d = tilde_pairwise(m)
        for i in range(m.shape[0]):
            for j in range(m.shape[0]):
                assert d[i, j] == tilde_dist(m[i], m[j])

    def test_pairwise_rejects_bad_values(self):
        with pytest.raises(ValueError):
            tilde_pairwise(np.asarray([[3]]))


class TestBalls:
    def test_ball_includes_self(self):
        m = np.asarray([[0, 1], [1, 1]], dtype=np.int8)
        assert 0 in tilde_ball(m[0], m, 0)

    def test_ball_radius(self):
        m = np.asarray([[0, 0], [0, 1], [1, 1]], dtype=np.int8)
        assert tilde_ball(m[0], m, 1).tolist() == [0, 1]

    def test_ball_negative_radius(self):
        with pytest.raises(ValueError):
            tilde_ball(np.asarray([0]), np.asarray([[0]]), -1)

    def test_ball_sizes(self):
        m = np.asarray([[0, 0], [0, 0], [1, 1]], dtype=np.int8)
        assert ball_sizes(m, 0).tolist() == [2, 2, 1]

    @given(value_matrix, st.integers(0, 5))
    @settings(max_examples=30)
    def test_sizes_match_balls(self, m, r):
        sizes = ball_sizes(m, r)
        for i in range(m.shape[0]):
            assert sizes[i] == tilde_ball(m[i], m, r).size


class TestWildcardCount:
    def test_zero(self):
        assert wildcard_count(np.asarray([0, 1, 0])) == 0

    def test_counts(self):
        assert wildcard_count(np.asarray([WILDCARD, 1, WILDCARD])) == 2
