"""Tests for Algorithm Coalesce (Fig. 6 / Theorem 5.3) — unit + property-based."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coalesce import coalesce
from repro.metrics.tilde import tilde_dist, tilde_dist_to_each, wildcard_count
from repro.utils.validation import WILDCARD


def clustered_multiset(M, L, D, alpha, seed, chaff="random"):
    """Multiset with a planted VT of ceil(alpha*M) vectors within D/2 of a center."""
    gen = np.random.default_rng(seed)
    size = math.ceil(alpha * M)
    center = gen.integers(0, 2, size=L, dtype=np.int8)
    V = gen.integers(0, 2, size=(M, L), dtype=np.int8)
    for i in range(size):
        row = center.copy()
        flips = gen.integers(0, D // 2 + 1)
        if flips:
            row[gen.choice(L, size=flips, replace=False)] ^= 1
        V[i] = row
    return V, np.arange(size), center


class TestBasics:
    def test_single_vector(self):
        V = np.asarray([[0, 1, 0]], dtype=np.int8)
        res = coalesce(V, 0, 1.0)
        assert res.size == 1
        assert np.array_equal(res.vectors[0], V[0])

    def test_identical_multiset_collapses(self):
        V = np.tile(np.asarray([1, 0, 1], dtype=np.int8), (8, 1))
        res = coalesce(V, 0, 0.5)
        assert res.size == 1
        assert res.vectors[0].tolist() == [1, 0, 1]

    def test_all_isolated_vectors_dropped(self):
        # alpha*M = 3 but every ball has exactly 1 vector -> empty output.
        V = np.asarray([[0, 0, 0, 0], [1, 1, 0, 0], [0, 0, 1, 1], [1, 1, 1, 1]], dtype=np.int8)
        res = coalesce(V, 0, 0.5)
        assert res.size == 0
        assert res.cover.shape[0] == 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            coalesce(np.empty((0, 3)), 1, 0.5)

    def test_rejects_bad_args(self):
        V = np.zeros((2, 2), dtype=np.int8)
        with pytest.raises(ValueError):
            coalesce(V, -1, 0.5)
        with pytest.raises(ValueError):
            coalesce(V, 1, 0.0)
        with pytest.raises(ValueError):
            coalesce(V, 1, 0.5, merge_radius=-1)

    def test_merge_produces_wildcards(self):
        # Two clusters of 2 identical vectors each, within merge radius.
        a = np.asarray([0, 0, 0, 0], dtype=np.int8)
        b = np.asarray([0, 0, 0, 1], dtype=np.int8)
        V = np.stack([a, a, b, b])
        res = coalesce(V, 0, 0.5)  # both survive cover; d̃(a,b)=1 <= 5*0=0? no
        # merge radius 5*D = 0 -> no merge, two outputs
        assert res.size == 2
        res2 = coalesce(V, 0, 0.5, merge_radius=1)
        assert res2.size == 1
        assert wildcard_count(res2.vectors[0]) == 1
        assert res2.vectors[0][3] == WILDCARD

    def test_deterministic(self):
        V, _, _ = clustered_multiset(30, 40, 6, 0.5, seed=1)
        a = coalesce(V, 6, 0.5)
        b = coalesce(V, 6, 0.5)
        assert np.array_equal(a.vectors, b.vectors)

    def test_output_sorted_lexicographically(self):
        V = np.asarray([[1, 1], [1, 1], [0, 0], [0, 0]], dtype=np.int8)
        res = coalesce(V, 0, 0.5)
        keys = [res.vectors[i].tobytes() for i in range(res.size)]
        assert keys == sorted(keys)


class TestTheorem53:
    @pytest.mark.parametrize("alpha,D,seed", [(0.5, 4, 0), (0.4, 8, 1), (0.25, 6, 2), (0.34, 2, 3)])
    def test_invariants(self, alpha, D, seed):
        V, vt_idx, _ = clustered_multiset(40, 64, D, alpha, seed)
        res = coalesce(V, D, alpha)
        # size <= 1/alpha
        assert res.size <= math.floor(1 / alpha)
        assert res.size >= 1
        # unique closest representative within 2D of every VT member
        closest = set()
        for i in vt_idx:
            dists = tilde_dist_to_each(V[i], res.vectors)
            assert dists.min() <= 2 * D
            closest.add(int(np.argmin(dists)))
        assert len(closest) == 1
        # wildcard cap
        rep = res.vectors[next(iter(closest))]
        assert wildcard_count(rep) <= 5 * D / alpha

    @given(st.integers(0, 2**31 - 1), st.sampled_from([(0.5, 2), (0.4, 6), (0.3, 4)]))
    @settings(max_examples=25, deadline=None)
    def test_invariants_random(self, seed, cfg):
        alpha, D = cfg
        V, vt_idx, _ = clustered_multiset(30, 48, D, alpha, seed)
        res = coalesce(V, D, alpha)
        assert res.size <= math.floor(1 / alpha)
        if res.size:
            for i in vt_idx:
                assert tilde_dist_to_each(V[i], res.vectors).min() <= 2 * D

    def test_lemma51_cover_represented(self):
        # Every input vector in a large-enough ball is within 2D of some
        # output (Lemma 5.2 for VT members; here we check cover members).
        V, vt_idx, _ = clustered_multiset(30, 48, 4, 0.5, seed=9)
        res = coalesce(V, 4, 0.5)
        for row in res.cover:
            d = tilde_dist_to_each(row, res.vectors)
            assert d.min() == 0  # rep(v) agrees with v off its wildcards

    def test_merge_stopping_condition(self):
        # After phase 2, no two outputs are within the merge radius.
        V, _, _ = clustered_multiset(40, 64, 8, 0.25, seed=4)
        res = coalesce(V, 8, 0.25)
        for i in range(res.size):
            for j in range(i + 1, res.size):
                assert tilde_dist(res.vectors[i], res.vectors[j]) > 5 * 8
