"""Tests for the virtual-player reduction (Section 3, m >> n)."""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.virtual import find_preferences_virtual, virtual_factor
from repro.metrics.evaluation import evaluate
from repro.workloads.planted import planted_instance


class TestVirtualFactor:
    def test_square(self):
        assert virtual_factor(100, 100) == 1

    def test_m_below_n(self):
        assert virtual_factor(100, 10) == 1

    def test_m_above_n(self):
        assert virtual_factor(100, 250) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            virtual_factor(0, 10)


class TestVirtualRun:
    def test_square_delegates(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=0)
        oracle = ProbeOracle(inst)
        res = find_preferences_virtual(oracle, 0.5, 0, rng=1)
        assert res.algorithm == "zero_radius"
        assert "virtual_factor" not in res.meta

    def test_wide_instance_recovers(self):
        # seed pair chosen to avoid the small-n w.h.p. tail (rng=2/3 is a
        # known unlucky draw at n_virtual=128; failure rate is ~1/16)
        inst = planted_instance(32, 128, 0.5, 0, rng=2)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        res = find_preferences_virtual(oracle, 0.5, 0, rng=503)
        assert res.algorithm == "virtual(zero_radius)"
        assert res.meta["virtual_factor"] == 4
        rep = evaluate(res.outputs, inst.prefs, comm.members)
        assert rep.discrepancy == 0

    def test_outputs_shape_is_real_population(self):
        inst = planted_instance(16, 64, 0.5, 0, rng=4)
        oracle = ProbeOracle(inst)
        res = find_preferences_virtual(oracle, 0.5, 0, rng=5)
        assert res.outputs.shape == (16, 64)

    def test_costs_attributed_to_owners(self):
        inst = planted_instance(16, 64, 0.5, 0, rng=6)
        oracle = ProbeOracle(inst)
        res = find_preferences_virtual(oracle, 0.5, 0, rng=7)
        # Real oracle counters advanced by exactly the attributed stats.
        assert np.array_equal(oracle.stats().per_player, res.stats.per_player)
        assert res.stats.total > 0

    def test_rounds_carry_simulation_overhead(self):
        # Per-player rounds are ~factor x the square-case rounds: the
        # m/n caveat of Theorem 5.4.
        inst_square = planted_instance(64, 64, 0.5, 0, rng=8)
        o1 = ProbeOracle(inst_square)
        square = find_preferences_virtual(o1, 0.5, 0, rng=9)

        inst_wide = planted_instance(64, 256, 0.5, 0, rng=10)
        o2 = ProbeOracle(inst_wide)
        wide = find_preferences_virtual(o2, 0.5, 0, rng=11)
        assert wide.rounds > square.rounds

    def test_billboard_mirrored(self):
        inst = planted_instance(16, 64, 0.5, 0, rng=12)
        oracle = ProbeOracle(inst)
        find_preferences_virtual(oracle, 0.5, 0, rng=13)
        mask = oracle.billboard.revealed_mask()
        vals = oracle.billboard.revealed_values()
        assert mask.any()
        assert (vals[mask] == inst.prefs[mask]).all()

    def test_budget_enforced_post_hoc(self):
        from repro.billboard.exceptions import BudgetExceededError

        inst = planted_instance(16, 64, 0.5, 0, rng=20)
        oracle = ProbeOracle(inst, budget=10)  # far below factor * per-virtual cost
        with pytest.raises(BudgetExceededError):
            find_preferences_virtual(oracle, 0.5, 0, rng=21)

    def test_generous_budget_passes(self):
        inst = planted_instance(16, 64, 0.5, 0, rng=22)
        oracle = ProbeOracle(inst, budget=10_000)
        res = find_preferences_virtual(oracle, 0.5, 0, rng=23)
        assert res.outputs.shape == (16, 64)

    def test_wide_still_beats_solo_total_work(self):
        # Total work should stay well below every player probing all m.
        inst = planted_instance(64, 512, 0.5, 0, rng=14)
        oracle = ProbeOracle(inst)
        res = find_preferences_virtual(oracle, 0.5, 0, rng=15)
        assert res.total_probes < 64 * 512 / 2
