"""Tests for the Fig. 1 dispatcher and the Section 6 wrappers."""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.main import (
    _doubling_schedule,
    anytime_find_preferences,
    find_preferences,
    find_preferences_unknown_d,
)
from repro.core.params import Params
from repro.metrics.evaluation import evaluate
from repro.workloads.planted import nested_instance, planted_instance


class TestDispatch:
    def test_zero_branch(self, small_oracle):
        res = find_preferences(small_oracle, 0.5, 0, rng=0)
        assert res.algorithm == "zero_radius"

    def test_small_branch(self):
        inst = planted_instance(96, 96, 0.5, 3, rng=1)
        oracle = ProbeOracle(inst)
        res = find_preferences(oracle, 0.5, 3, rng=1)
        assert res.algorithm == "small_radius"

    def test_large_branch(self):
        inst = planted_instance(96, 96, 0.5, 48, rng=2)
        oracle = ProbeOracle(inst)
        res = find_preferences(oracle, 0.5, 48, rng=2)
        assert res.algorithm == "large_radius"

    def test_branch_boundary_uses_params(self):
        inst = planted_instance(64, 64, 0.5, 5, rng=3)
        p = Params.practical().with_overrides(lr_small_d_c=0.1)
        oracle = ProbeOracle(inst)
        res = find_preferences(oracle, 0.5, 5, params=p, rng=3)
        assert res.algorithm == "large_radius"

    def test_stats_are_run_delta(self, small_instance):
        oracle = ProbeOracle(small_instance)
        oracle.probe(0, 0)  # pre-existing probes must not be attributed
        res = find_preferences(oracle, 0.5, 0, rng=4)
        assert res.stats.total == oracle.stats().total - 1

    def test_rejects_bad_args(self, small_oracle):
        with pytest.raises(ValueError):
            find_preferences(small_oracle, 0.0, 0)
        with pytest.raises(ValueError):
            find_preferences(small_oracle, 0.5, -1)

    def test_meta_records_branch(self, small_oracle):
        res = find_preferences(small_oracle, 0.5, 0, rng=5)
        assert res.meta["branch"] == "zero_radius"
        assert res.meta["alpha"] == 0.5
        assert res.rounds == res.stats.rounds
        assert res.total_probes == res.stats.total


class TestDoublingSchedule:
    def test_starts_with_zero(self):
        assert _doubling_schedule(100, 2.0, None)[0] == 0

    def test_doubles(self):
        assert _doubling_schedule(16, 2.0, None) == [0, 1, 2, 4, 8, 16]

    def test_cap(self):
        assert _doubling_schedule(100, 2.0, 4) == [0, 1, 2, 4]

    def test_cap_above_m(self):
        assert _doubling_schedule(8, 2.0, 100)[-1] <= 8


class TestUnknownD:
    def test_quality_close_to_known(self):
        inst = planted_instance(96, 96, 0.5, 2, rng=6)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        res = find_preferences_unknown_d(oracle, 0.5, rng=6, d_max=8)
        rep = evaluate(res.outputs, inst.prefs, comm.members, diam=comm.diameter)
        assert rep.discrepancy <= 5 * max(comm.diameter, 1)

    def test_meta_schedule(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=7)
        oracle = ProbeOracle(inst)
        res = find_preferences_unknown_d(oracle, 0.5, rng=7, d_max=4)
        assert res.meta["schedule"] == [0, 1, 2, 4]
        assert len(res.meta["per_d_rounds"]) == 4
        assert res.algorithm == "unknown_d"

    def test_exact_on_d0(self):
        inst = planted_instance(96, 96, 0.5, 0, rng=8)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        res = find_preferences_unknown_d(oracle, 0.5, rng=8, d_max=4)
        rep = evaluate(res.outputs, inst.prefs, comm.members)
        assert rep.discrepancy <= 2  # RSelect may keep an O(D_min)-close pick


class TestAnytime:
    def test_runs_phases(self):
        inst = nested_instance(64, 64, [2, 8], [0.4, 0.8], rng=9)
        oracle = ProbeOracle(inst)
        res = anytime_find_preferences(oracle, rng=9, max_phases=2, d_max=8)
        assert res.algorithm == "anytime"
        assert len(res.meta["phases"]) == 2
        assert res.meta["phases"][0] == 1.0
        assert res.meta["phases"][1] == 0.5

    def test_callback_invoked(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=10)
        oracle = ProbeOracle(inst)
        calls = []
        anytime_find_preferences(
            oracle, rng=10, max_phases=2, d_max=4,
            phase_callback=lambda j, a, out: calls.append((j, a, out.shape)),
        )
        assert [c[0] for c in calls] == [0, 1]
        assert calls[0][2] == (64, 64)

    def test_budget_exhaustion_graceful(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=11)
        oracle = ProbeOracle(inst, budget=40)
        res = anytime_find_preferences(oracle, rng=11, d_max=8)
        assert res.meta["budget_exhausted"]
        assert res.outputs.shape == (64, 64)

    def test_budget_zero_returns_trivial(self):
        inst = planted_instance(32, 32, 0.5, 0, rng=12)
        oracle = ProbeOracle(inst, budget=0)
        res = anytime_find_preferences(oracle, rng=12, d_max=4)
        assert res.meta["budget_exhausted"]
        assert (res.outputs == 0).all()

    def test_quality_on_planted(self):
        inst = planted_instance(96, 96, 0.5, 0, rng=13)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        res = anytime_find_preferences(oracle, rng=13, max_phases=2, d_max=8)
        rep = evaluate(res.outputs, inst.prefs, comm.members)
        assert rep.discrepancy <= 4
