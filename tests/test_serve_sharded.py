"""The sharded topology's pinned contract: topology invisibility.

A :class:`~repro.serve.sharded.ShardedRuntime` — sessions partitioned
across worker processes over the shared packed oracle, billboard
replicated through the append-only post log — must be observationally
identical to the single-process runtime and to the offline anytime
loop: same outputs, same per-player probe counts (for non-drained
runs), same phase α-ladder, for **any** worker count.  Kill/resume
must preserve all of that across topology changes: a snapshot cut on
one worker count restores to any other and finishes bitwise-equal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.main import anytime_find_preferences
from repro.serve import ServeConfig, load_runtime, serve
from repro.serve.runtime import LocalRuntime
from repro.serve.sharded import ShardedRuntime, shard_players
from repro.workloads.registry import make_instance

N = 48
SEED = 11
MAX_PHASES = 2
D_MAX = 4


def _config(workers: int, **overrides) -> ServeConfig:
    base = dict(
        seed=SEED,
        max_phases=MAX_PHASES,
        d_max=D_MAX,
        workers=workers,
        window=16,
        probes_per_request=8,
    )
    base.update(overrides)
    return ServeConfig(**base)


@pytest.fixture(scope="module")
def instance():
    return make_instance("planted", N, N, 0.5, 2, rng=5)


@pytest.fixture(scope="module")
def offline(instance):
    """The offline anytime reference run (same seed the service uses)."""
    oracle = ProbeOracle(instance)
    run = anytime_find_preferences(oracle, rng=SEED, max_phases=MAX_PHASES, d_max=D_MAX)
    return run.outputs, oracle.stats().per_player.copy()


class TestPartition:
    def test_contiguous_and_complete(self):
        parts = shard_players(10, 3)
        assert [p for block in parts for p in block] == list(range(10))
        assert all(block == sorted(block) for block in parts)

    def test_more_workers_than_players_raises(self):
        with pytest.raises(ValueError, match="more workers"):
            shard_players(2, 3)

    def test_nonpositive_workers_raises(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            shard_players(8, 0)

    def test_sharded_runtime_requires_two_workers(self, instance):
        with pytest.raises(ValueError, match="workers >= 2"):
            ShardedRuntime(instance, _config(1))


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_sharded_matches_offline(self, instance, offline, workers):
        ref_outputs, ref_counts = offline
        with serve(instance, _config(workers)) as runtime:
            assert isinstance(runtime, ShardedRuntime)
            assert runtime.workers == workers
            outputs = runtime.run_to_completion()
            assert runtime.finished
            assert not runtime.exhausted
            assert np.array_equal(outputs, ref_outputs)
            assert np.array_equal(runtime.probe_counts(), ref_counts)
            assert runtime.phases_completed == MAX_PHASES
            assert runtime.completed == [2.0**-j for j in range(MAX_PHASES)]
            assert runtime.session_count("complete") == N

    def test_flush_driven_rounds_match_run_to_completion(self, instance, offline):
        """The open-loop path — submit/flush rounds from the front end —
        lands on the same bits as the blocking drive."""
        ref_outputs, ref_counts = offline
        with serve(instance, _config(2)) as runtime:
            for _ in range(10_000):
                players = runtime.open_players()
                if not players:
                    break
                for player in players:
                    runtime.submit(player)
                runtime.flush()
            assert runtime.finished
            assert np.array_equal(runtime.outputs(), ref_outputs)
            assert np.array_equal(runtime.probe_counts(), ref_counts)

    def test_matches_local_runtime(self, instance):
        with serve(instance, _config(1)) as local:
            assert isinstance(local, LocalRuntime)
            local_outputs = local.run_to_completion()
            local_counts = local.probe_counts()
            local_batches = local.oracle_batches
        with serve(instance, _config(2)) as sharded:
            assert np.array_equal(sharded.run_to_completion(), local_outputs)
            assert np.array_equal(sharded.probe_counts(), local_counts)
            assert sharded.oracle_batches >= local_batches > 0


class TestRequestSurface:
    def test_query_routes_to_owner_and_does_not_advance(self, instance):
        with serve(instance, _config(2)) as runtime:
            player = runtime.player_partitions[1][0]  # owned by shard 1
            response = runtime.query(player)
            assert response.player == player
            assert response.probes_used == 0
            assert response.estimate is not None
            assert response.estimate.shape == (N,)
            assert int(runtime.probe_counts().sum()) == 0

    def test_submit_validates_player_and_grant(self, instance):
        with serve(instance, _config(2)) as runtime:
            with pytest.raises(ValueError, match="out of range"):
                runtime.submit(N)
            with pytest.raises(ValueError, match="must be positive"):
                runtime.submit(0, probes=0)

    def test_partitions_cover_population(self, instance):
        with serve(instance, _config(3)) as runtime:
            flat = [p for block in runtime.player_partitions for p in block]
            assert flat == list(range(N))
            assert len(runtime.player_partitions) == 3


class TestGracefulDegradation:
    def test_budget_drain_matches_offline_cut(self, instance):
        """Exhaustion propagates through the log and freezes every shard
        at the same phase cut as the offline budgeted run."""
        budget = 80
        oracle = ProbeOracle(instance, budget=budget)
        run = anytime_find_preferences(
            oracle, rng=SEED, max_phases=MAX_PHASES, d_max=D_MAX
        )
        with serve(instance, _config(2, budget=budget)) as runtime:
            outputs = runtime.run_to_completion()
            assert runtime.exhausted
            assert runtime.finished
            assert np.array_equal(outputs, run.outputs)
            assert runtime.session_count("drained") == N


class TestKillResume:
    def _drive_to_phase(self, runtime, phase: int) -> None:
        for _ in range(10_000):
            if runtime.phases_completed >= phase or runtime.finished:
                return
            players = runtime.open_players()
            for player in players:
                runtime.submit(player)
            runtime.flush()
        raise AssertionError("runtime never reached the target phase")

    @pytest.mark.parametrize("restore_workers", [1, 2, 3])
    def test_midrun_snapshot_restores_to_any_worker_count(
        self, instance, offline, tmp_path, restore_workers
    ):
        """Snapshot after phase 0 on two workers, kill, restore to
        {1, 2, 3} workers: every topology finishes bitwise-equal to the
        never-interrupted offline run."""
        ref_outputs, ref_counts = offline
        snap = tmp_path / "mid"
        with serve(instance, _config(2)) as runtime:
            self._drive_to_phase(runtime, 1)
            assert not runtime.finished
            runtime.save(snap)
        assert (snap / "manifest.json").is_file()

        with load_runtime(snap, workers=restore_workers) as restored:
            assert restored.workers == restore_workers
            assert restored.phases_completed == 1
            outputs = restored.run_to_completion()
            assert np.array_equal(outputs, ref_outputs)
            assert np.array_equal(restored.probe_counts(), ref_counts)

    def test_fresh_snapshot_roundtrip(self, instance, offline, tmp_path):
        """A phase-0 (pre-work) sharded snapshot replays the whole run."""
        ref_outputs, ref_counts = offline
        snap = tmp_path / "fresh"
        with serve(instance, _config(3)) as runtime:
            runtime.save(snap)
        with load_runtime(snap) as restored:
            assert restored.workers == 3  # manifest's count kept by default
            assert np.array_equal(restored.run_to_completion(), ref_outputs)
            assert np.array_equal(restored.probe_counts(), ref_counts)

    def test_completed_snapshot_restores_finished(self, instance, offline, tmp_path):
        ref_outputs, _ = offline
        snap = tmp_path / "done"
        with serve(instance, _config(2)) as runtime:
            runtime.run_to_completion()
            runtime.save(snap)
        with load_runtime(snap, workers=1) as restored:
            assert restored.finished
            assert np.array_equal(restored.outputs(), ref_outputs)


class TestMetrics:
    def test_merged_metrics_fold_worker_registries(self, instance):
        with serve(instance, _config(2)) as runtime:
            runtime.run_to_completion()
            merged = runtime.merged_metrics()
            snapshot = merged.snapshot()
        assert snapshot  # the workers recorded probe/serve activity
