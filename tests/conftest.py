"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.workloads.planted import planted_instance


@pytest.fixture
def rng():
    """Deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def params():
    """Practical constants."""
    return Params.practical()


@pytest.fixture
def small_instance():
    """64x64 planted D=0 instance with a half-population community."""
    return planted_instance(64, 64, 0.5, 0, rng=7)


@pytest.fixture
def small_oracle(small_instance):
    """Oracle over the small instance."""
    return ProbeOracle(small_instance)


@pytest.fixture
def d4_instance():
    """128x128 planted (0.5, 4) instance."""
    return planted_instance(128, 128, 0.5, 4, rng=21)
