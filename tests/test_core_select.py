"""Tests for Algorithm Select (Fig. 3 / Theorem 3.2) — unit + property-based."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.select import distinguishing_coords, select, select_candidate_index
from repro.metrics.hamming import hamming_to_each
from repro.metrics.tilde import tilde_dist_to_each
from repro.utils.validation import WILDCARD


def make_probe(hidden, counter=None):
    def probe(j):
        if counter is not None:
            counter.append(j)
        return int(hidden[j])

    return probe


class TestDistinguishingCoords:
    def test_identical_rows(self):
        c = np.asarray([[0, 1], [0, 1]])
        assert distinguishing_coords(c).size == 0

    def test_single_row(self):
        assert distinguishing_coords(np.asarray([[0, 1, 0]])).size == 0

    def test_differences_found_in_order(self):
        c = np.asarray([[0, 1, 0, 1], [0, 0, 0, 0]])
        assert distinguishing_coords(c).tolist() == [1, 3]

    def test_wildcard_not_a_difference(self):
        c = np.asarray([[WILDCARD, 1], [0, 1]])
        assert distinguishing_coords(c).size == 0

    def test_wildcard_pair_vs_value(self):
        c = np.asarray([[WILDCARD, 0], [WILDCARD, 1]])
        assert distinguishing_coords(c).tolist() == [1]

    def test_non_binary_values(self):
        c = np.asarray([[5, 2], [5, 3]])
        assert distinguishing_coords(c).tolist() == [1]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            distinguishing_coords(np.asarray([0, 1]))


class TestSelectBasics:
    def test_single_candidate_no_probes(self):
        c = np.asarray([[0, 1, 0]])
        counter = []
        out = select(c, make_probe(np.asarray([1, 1, 1]), counter), 0)
        assert out.index == 0
        assert out.probes == 0
        assert counter == []

    def test_exact_match_found(self):
        hidden = np.asarray([0, 1, 1, 0])
        c = np.asarray([[0, 1, 1, 0], [1, 0, 1, 0], [0, 0, 0, 0]])
        out = select(c, make_probe(hidden), 0)
        assert out.index == 0
        assert not out.exhausted

    def test_bound_d_closest(self):
        hidden = np.asarray([0, 0, 0, 0, 0, 0])
        c = np.asarray([[0, 0, 0, 0, 0, 1], [1, 1, 1, 0, 0, 0]])  # dist 1 and 3
        out = select(c, make_probe(hidden), 1)
        assert out.index == 0

    def test_far_last_survivor_not_exhausted(self):
        # With binary candidates the last survivor can never be
        # eliminated (a probed coordinate where both candidates disagree
        # with the hidden value means they agree with each other), so
        # Select returns it un-flagged even when its true distance
        # exceeds the bound — exactly the paper's "guarantee only under
        # the precondition" semantics.
        hidden = np.zeros(6, dtype=np.int8)
        c = np.asarray([[1, 1, 1, 1, 1, 1], [1, 1, 1, 0, 1, 1]])
        out = select(c, make_probe(hidden), 0)
        assert not out.exhausted
        assert out.index == 1

    def test_exhausted_with_nonbinary_values(self):
        # Non-binary values (the super-object reuse) can eliminate every
        # candidate at once: the hidden value matches neither.
        hidden = np.asarray([2, 2])
        c = np.asarray([[0, 0], [1, 1]])
        out = select(c, make_probe(hidden), 0)
        assert out.exhausted
        assert out.index in (0, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            select(np.empty((0, 3)), lambda j: 0, 0)

    def test_rejects_negative_bound(self):
        with pytest.raises(ValueError):
            select(np.asarray([[0]]), lambda j: 0, -1)

    def test_wrapper_returns_index(self):
        hidden = np.asarray([1, 1])
        c = np.asarray([[0, 0], [1, 1]])
        assert select_candidate_index(c, make_probe(hidden), 0) == 1

    def test_wildcard_candidates(self):
        hidden = np.asarray([0, 1, 1])
        c = np.asarray([[WILDCARD, 1, 1], [0, 0, 0]], dtype=np.int8)
        out = select(c, make_probe(hidden), 0)
        assert out.index == 0


class TestLexicographicTieBreak:
    def test_ties_resolved_lexicographically(self):
        # Two candidates equally distant from hidden; Select must return
        # the lexicographically first (paper: "lexicographically first
        # vector in U").
        hidden = np.asarray([0, 0])
        c = np.asarray([[0, 1], [1, 0]])  # both at distance 1
        out = select(c, make_probe(hidden), 1)
        assert out.vector.tolist() == [0, 1]

    def test_duplicate_candidates(self):
        hidden = np.asarray([1, 1])
        c = np.asarray([[1, 1], [1, 1], [0, 0]])
        out = select(c, make_probe(hidden), 0)
        assert out.vector.tolist() == [1, 1]


hidden_and_candidates = st.integers(2, 40).flatmap(
    lambda L: st.tuples(
        arrays(np.int8, L, elements=st.integers(0, 1)),
        arrays(np.int8, st.tuples(st.integers(1, 8), st.just(L)), elements=st.integers(0, 1)),
        st.integers(0, 6),
    )
)


class TestSelectProperties:
    @given(hidden_and_candidates)
    @settings(max_examples=150, deadline=None)
    def test_probe_bound_always_holds(self, case):
        hidden, cands, bound = case
        counter = []
        out = select(cands, make_probe(hidden, counter), bound)
        k = cands.shape[0]
        assert out.probes <= k * (bound + 1)
        assert out.probes == len(counter)

    @given(hidden_and_candidates)
    @settings(max_examples=150, deadline=None)
    def test_exact_when_precondition_holds(self, case):
        hidden, cands, bound = case
        dists = hamming_to_each(hidden, cands)
        out = select(cands, make_probe(hidden), bound)
        if dists.min() <= bound:
            # Theorem 3.2 applies: exact lexicographically-first closest.
            assert not out.exhausted
            closest = np.flatnonzero(dists == dists.min())
            lex_first = min(closest, key=lambda i: cands[i].tobytes())
            assert out.index == lex_first

    @given(hidden_and_candidates)
    @settings(max_examples=100, deadline=None)
    def test_never_probes_same_coord_twice(self, case):
        hidden, cands, bound = case
        counter = []
        select(cands, make_probe(hidden, counter), bound)
        assert len(counter) == len(set(counter))

    @given(hidden_and_candidates)
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, case):
        hidden, cands, bound = case
        a = select(cands, make_probe(hidden), bound)
        b = select(cands, make_probe(hidden), bound)
        assert a.index == b.index
        assert a.probes == b.probes

    @given(
        st.integers(2, 30).flatmap(
            lambda L: st.tuples(
                arrays(np.int8, L, elements=st.integers(0, 1)),
                arrays(
                    np.int8,
                    st.tuples(st.integers(1, 6), st.just(L)),
                    elements=st.sampled_from([0, 1, WILDCARD]),
                ),
                st.integers(0, 4),
            )
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_wildcard_candidates_tilde_semantics(self, case):
        # The well-defined guarantee with wildcards: any candidate whose
        # *full* d̃ to the hidden vector is within the bound survives
        # (its probed disagreements are a subset), so the winner's
        # probed-coordinate disagreement count never exceeds the best
        # candidate's full d̃.
        hidden, cands, bound = case
        counter = []
        out = select(cands, make_probe(hidden, counter), bound)
        d = tilde_dist_to_each(hidden, cands)
        if d.min() <= bound:
            assert not out.exhausted
            winner = cands[out.index]
            winner_probed_dis = sum(
                1 for j in counter if winner[j] != WILDCARD and winner[j] != hidden[j]
            )
            assert winner_probed_dis <= d.min()
