"""End-to-end integration tests across modules, including failure injection."""

import numpy as np
import pytest

import repro
from repro.billboard.exceptions import BudgetExceededError
from repro.billboard.oracle import ProbeOracle
from repro.core.main import find_preferences
from repro.metrics.evaluation import evaluate
from repro.workloads.mixtures import mixture_instance
from repro.workloads.noise import flip_noise
from repro.workloads.planted import planted_instance


class TestPublicApi:
    def test_quickstart_flow(self):
        # The README quickstart, verbatim.
        inst = repro.planted_instance(n=64, m=64, alpha=0.5, D=0, rng=7)
        oracle = repro.ProbeOracle(inst)
        result = repro.find_preferences(oracle, alpha=0.5, D=0, rng=7)
        report = repro.evaluate(result.outputs, inst.prefs, inst.main_community().members)
        assert report.discrepancy == 0
        assert result.rounds < 64

    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None


class TestMultiCommunity:
    def test_two_communities_both_recovered(self):
        inst = planted_instance(128, 128, 0.33, 0, n_communities=2, rng=60)
        oracle = ProbeOracle(inst)
        res = find_preferences(oracle, 0.33, 0, rng=61)
        for comm in inst.communities:
            rep = evaluate(res.outputs, inst.prefs, comm.members)
            assert rep.discrepancy == 0

    def test_mixture_types_recovered_by_zero_radius(self):
        inst = mixture_instance(128, 128, 3, noise=0.0, rng=62)
        alpha = min(c.size for c in inst.communities) / 128
        oracle = ProbeOracle(inst)
        res = find_preferences(oracle, alpha, 0, rng=63)
        errs = (res.outputs != inst.prefs).sum(axis=1)
        assert np.median(errs) == 0


class TestMarkovWorkloadIntegration:
    def test_markov_types_identified_end_to_end(self):
        # The §2 probabilistic model produces large-diameter types (the
        # Large Radius regime).  The outputs carry an O(D/alpha) error,
        # so we check the "tell me who I am" property instead of exact
        # bits: every member's output is closer to its own type's center
        # than to the other type's.
        from repro.metrics.hamming import hamming
        from repro.workloads.markov import markov_instance

        inst = markov_instance(96, 96, 2, core_size=20, core_like=0.98,
                               tail_like=0.02, rng=30)
        comm = inst.main_community()
        other = next(c for c in inst.communities if c.label != comm.label)
        alpha = comm.size / 96
        oracle = ProbeOracle(inst)
        res = find_preferences(oracle, alpha, comm.diameter, rng=31)
        outputs = np.where(res.outputs == -1, 0, res.outputs)
        correct = sum(
            hamming(outputs[p], comm.center) < hamming(outputs[p], other.center)
            for p in comm.members
        )
        assert correct / comm.size >= 0.9


class TestNoiseRobustness:
    def test_small_noise_handled_by_small_radius(self):
        base = planted_instance(96, 96, 0.5, 0, rng=64)
        noisy = flip_noise(base, 0.01, rng=65)
        comm = noisy.main_community()
        D = max(comm.diameter, 1)
        oracle = ProbeOracle(noisy)
        res = find_preferences(oracle, 0.5, D, rng=66)
        rep = evaluate(res.outputs, noisy.prefs, comm.members, diam=comm.diameter)
        assert rep.discrepancy <= 5 * D


class TestBudgetInjection:
    def test_find_preferences_budget_exhaustion_raises(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=67)
        oracle = ProbeOracle(inst, budget=3)
        with pytest.raises(BudgetExceededError):
            find_preferences(oracle, 0.5, 0, rng=68)

    def test_anytime_swallows_exhaustion(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=69)
        oracle = ProbeOracle(inst, budget=100)
        res = repro.anytime_find_preferences(oracle, rng=70, d_max=4)
        assert res.outputs.shape == (64, 64)

    def test_billboard_consistent_after_exhaustion(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=71)
        oracle = ProbeOracle(inst, budget=5)
        try:
            find_preferences(oracle, 0.5, 0, rng=72)
        except BudgetExceededError:
            pass
        # every revealed entry is a true grade
        mask = oracle.billboard.revealed_mask()
        vals = oracle.billboard.revealed_values()
        assert (vals[mask] == inst.prefs[mask]).all()


class TestDegenerateShapes:
    def test_m_less_than_n(self):
        inst = planted_instance(128, 32, 0.5, 0, rng=73)
        oracle = ProbeOracle(inst)
        res = find_preferences(oracle, 0.5, 0, rng=74)
        comm = inst.main_community()
        assert (res.outputs[comm.members] == inst.prefs[comm.members]).all()

    def test_m_greater_than_n(self):
        inst = planted_instance(32, 128, 0.5, 0, rng=75)
        oracle = ProbeOracle(inst)
        res = find_preferences(oracle, 0.5, 0, rng=76)
        comm = inst.main_community()
        assert (res.outputs[comm.members] == inst.prefs[comm.members]).all()

    def test_whole_population_identical(self):
        prefs = np.tile(np.random.default_rng(0).integers(0, 2, 64, dtype=np.int8), (64, 1))
        oracle = ProbeOracle(prefs)
        res = find_preferences(oracle, 1.0, 0, rng=77)
        assert (res.outputs == prefs).all()
        assert res.rounds < 64

    def test_all_players_distinct_alpha_one_over_n_solo_regime(self):
        # No community at all: the algorithm still terminates and honest
        # players can fall back to solo cost (alpha small -> big leaf).
        gen = np.random.default_rng(1)
        prefs = gen.integers(0, 2, (32, 32), dtype=np.int8)
        oracle = ProbeOracle(prefs)
        res = find_preferences(oracle, 1 / 32, 0, rng=78)
        assert res.outputs.shape == (32, 32)
        # with threshold >= n the recursion is a single leaf = exact solo
        assert (res.outputs == prefs).all()


class TestInformationFlow:
    def test_all_outputs_derivable_from_probes(self):
        # Sanity check of the simulation's information discipline: a run
        # on two instances that agree on every probed entry must produce
        # identical outputs.  We approximate by re-running on a copy.
        inst = planted_instance(64, 64, 0.5, 0, rng=79)
        outs = []
        for _ in range(2):
            oracle = ProbeOracle(inst.prefs.copy())
            outs.append(find_preferences(oracle, 0.5, 0, rng=80).outputs)
        assert np.array_equal(outs[0], outs[1])

    def test_probe_counts_match_billboard(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=81)
        oracle = ProbeOracle(inst)
        find_preferences(oracle, 0.5, 0, rng=82)
        # every charged probe revealed an entry: reveals <= probes
        assert oracle.billboard.n_revealed <= oracle.stats().total
