"""Larger-scale smoke tests (gated behind REPRO_SCALE=1).

The regular suite keeps instances small for speed; these runs exercise
the sizes the experiments actually use and the memory-sensitive code
paths (bit-packed diameter, big batched probes).  Enable with::

    REPRO_SCALE=1 pytest tests/test_scale.py
"""

import os

import numpy as np
import pytest

import repro
from repro.billboard.oracle import ProbeOracle
from repro.metrics.bitpack import BitMatrix
from repro.metrics.hamming import diameter

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SCALE", "0") != "1",
    reason="scale tests enabled with REPRO_SCALE=1",
)


class TestScale:
    def test_zero_radius_2048(self):
        inst = repro.planted_instance(2048, 2048, 0.5, 0, rng=0)
        oracle = ProbeOracle(inst)
        res = repro.find_preferences(oracle, 0.5, 0, rng=1)
        rep = repro.evaluate(res.outputs, inst.prefs, inst.main_community().members)
        assert rep.discrepancy == 0
        assert res.rounds < 64

    def test_packed_diameter_large(self):
        gen = np.random.default_rng(2)
        m = gen.integers(0, 2, (2000, 512), dtype=np.int8)
        assert diameter(m) == BitMatrix(m).diameter()

    def test_small_radius_1024(self):
        inst = repro.planted_instance(1024, 1024, 0.5, 2, rng=3)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        res = repro.find_preferences(oracle, 0.5, 2, rng=4)
        rep = repro.evaluate(res.outputs, inst.prefs, comm.members, diam=comm.diameter)
        assert rep.discrepancy <= 10

    def test_large_radius_1024(self):
        inst = repro.planted_instance(1024, 1024, 0.5, 100, rng=5)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        res = repro.find_preferences(oracle, 0.5, 100, rng=6)
        rep = repro.evaluate(res.outputs, inst.prefs, comm.members, diam=comm.diameter)
        assert rep.stretch <= 8.0
