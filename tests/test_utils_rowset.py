"""Tests for the order-preserving row-deduplication fast path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import rowset


def _reference(rows, return_counts=False):
    return np.unique(rows, axis=0, return_counts=return_counts)


class TestUniqueRows:
    def test_binary_rows_match_np_unique(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 2, (200, 33), dtype=np.int8)
        got_u, got_c = rowset.unique_rows(rows, return_counts=True)
        ref_u, ref_c = _reference(rows, return_counts=True)
        assert np.array_equal(got_u, ref_u)
        assert np.array_equal(got_c, ref_c)

    def test_small_int_offset_path(self):
        rng = np.random.default_rng(1)
        rows = rng.integers(-3, 9, (64, 7)).astype(np.int64)
        assert np.array_equal(rowset.unique_rows(rows), _reference(rows))

    def test_wide_range_falls_back(self):
        rows = np.asarray([[0, 10**9], [-(10**9), 5], [0, 10**9]])
        assert np.array_equal(rowset.unique_rows(rows), _reference(rows))

    def test_empty_and_single(self):
        empty = np.empty((0, 5), dtype=np.int8)
        assert rowset.unique_rows(empty).shape == (0, 5)
        one = np.asarray([[1, 0, 1]], dtype=np.int8)
        assert np.array_equal(rowset.unique_rows(one), one)

    @given(st.integers(0, 2**31 - 1), st.integers(1, 40), st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_equivalence_random(self, seed, n_rows, n_cols):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, 2, (n_rows, n_cols), dtype=np.int8)
        got_u, got_c = rowset.unique_rows(rows, return_counts=True)
        ref_u, ref_c = _reference(rows, return_counts=True)
        assert np.array_equal(got_u, ref_u)
        assert np.array_equal(got_c, ref_c)

    def test_legacy_toggle_restores_np_unique(self):
        rng = np.random.default_rng(2)
        rows = rng.integers(0, 2, (50, 17), dtype=np.int8)
        fast = rowset.unique_rows(rows)
        with rowset.legacy_unique():
            assert not rowset.FAST
            legacy = rowset.unique_rows(rows)
        assert rowset.FAST
        assert np.array_equal(fast, legacy)

    def test_legacy_toggle_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with rowset.legacy_unique():
                raise RuntimeError("boom")
        assert rowset.FAST


class TestPopularAndPlurality:
    def test_popular_rows_threshold(self):
        rows = np.asarray(
            [[1, 1]] * 5 + [[0, 0]] * 3 + [[1, 0]] * 1, dtype=np.int8
        )
        # Threshold-passing rows come back in lex order (np.unique order).
        popular = rowset.popular_rows(rows, min_votes=3)
        assert [r.tolist() for r in popular] == [[0, 0], [1, 1]]

    def test_popular_rows_plurality_fallback(self):
        rows = np.asarray([[0, 1], [1, 0], [1, 1]], dtype=np.int8)
        popular = rowset.popular_rows(rows, min_votes=2)
        assert len(popular) >= 1

    def test_plurality_row_picks_mode(self):
        rows = np.asarray([[0, 1]] * 2 + [[1, 1]] * 3, dtype=np.int8)
        assert rowset.plurality_row(rows).tolist() == [[1, 1]]
