"""Tests for the round-synchronous engine and its Zero Radius program."""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.core.zero_radius import NO_OUTPUT, PrimitiveSpace, zero_radius
from repro.engine import (
    Post,
    Probe,
    PublicCoins,
    RoundScheduler,
    Wait,
    run_zero_radius_engine,
)
from repro.workloads.planted import planted_instance


class TestActions:
    def test_probe_validation(self):
        with pytest.raises(ValueError):
            Probe(-1)

    def test_actions_frozen(self):
        a = Probe(3)
        with pytest.raises(Exception):
            a.obj = 5


class TestScheduler:
    def _oracle(self, n=4, m=6):
        rng = np.random.default_rng(0)
        return ProbeOracle(rng.integers(0, 2, (n, m), dtype=np.int8))

    def test_single_prober(self):
        oracle = self._oracle()

        def program():
            v0 = yield Probe(0)
            v1 = yield Probe(1)
            return np.asarray([v0, v1])

        result = RoundScheduler(oracle, {0: program()}).run()
        assert result.rounds == 2
        assert result.outputs[0].tolist() == oracle.checkpoint()["prefs"][0, :2].tolist()

    def test_lockstep_rounds_count_max(self):
        oracle = self._oracle()

        def short():
            v = yield Probe(0)
            return np.asarray([v])

        def long():
            out = []
            for j in range(4):
                out.append((yield Probe(j)))
            return np.asarray(out)

        result = RoundScheduler(oracle, {0: short(), 1: long()}).run()
        assert result.rounds == 4

    def test_posts_are_free(self):
        oracle = self._oracle()

        def program():
            v = yield Probe(0)
            yield Post("c1", np.asarray([v]))
            yield Post("c2", np.asarray([v]))
            w = yield Probe(1)
            return np.asarray([v, w])

        result = RoundScheduler(oracle, {0: program()}).run()
        assert result.rounds == 2  # two probes, posts free
        assert oracle.billboard.has_channel("c1") and oracle.billboard.has_channel("c2")

    def test_wait_consumes_round_without_probe(self):
        oracle = self._oracle()

        def program():
            yield Wait()
            yield Wait()
            v = yield Probe(0)
            return np.asarray([v])

        result = RoundScheduler(oracle, {0: program()}).run()
        assert result.rounds == 3
        assert result.probe_rounds == 1

    def test_wait_synchronisation(self):
        # Player 1 waits for player 0's post, then reads it.
        oracle = self._oracle()
        board = oracle.billboard

        def poster():
            v = yield Probe(0)
            yield Post("sync", np.asarray([v]))
            return np.asarray([v])

        def waiter():
            while not board.has_channel("sync"):
                yield Wait()
            seen = board.read_vectors("sync")[0]
            return seen

        result = RoundScheduler(oracle, {0: poster(), 1: waiter()}).run()
        assert result.outputs[1].tolist() == result.outputs[0].tolist()

    def test_unknown_action_rejected(self):
        oracle = self._oracle()

        def program():
            yield "bogus"
            return np.asarray([0])

        with pytest.raises(TypeError):
            RoundScheduler(oracle, {0: program()}).run()

    def test_max_rounds_guard(self):
        oracle = self._oracle()

        def forever():
            while True:
                yield Wait()
            return np.asarray([])  # pragma: no cover

        with pytest.raises(RuntimeError):
            RoundScheduler(oracle, {0: forever()}).run(max_rounds=10)

    def test_validation(self):
        oracle = self._oracle()
        with pytest.raises(ValueError):
            RoundScheduler(oracle, {})
        with pytest.raises(ValueError):
            RoundScheduler(oracle, {99: iter([])})


class TestPublicCoins:
    def test_tree_partitions_players_and_objects(self):
        coins = PublicCoins.draw(np.arange(32), 32, 0.5, n_global=32, rng=1)
        node = coins.root
        if node.children:
            l, r = node.children
            assert np.array_equal(np.sort(np.concatenate([l.players, r.players])), node.players)
            assert np.array_equal(np.sort(np.concatenate([l.objects, r.objects])), node.objects)

    def test_path_root_to_leaf(self):
        coins = PublicCoins.draw(np.arange(64), 64, 0.5, n_global=64, rng=2)
        path = coins.path_of(5)
        assert path[0] is coins.root
        assert path[-1].is_leaf
        for node in path:
            assert 5 in node.players

    def test_sibling(self):
        coins = PublicCoins.draw(np.arange(64), 64, 0.5, n_global=64, rng=3)
        leaf = coins.leaf_of(0)
        if leaf.node_id:
            sib = coins.sibling(leaf.node_id)
            assert sib.node_id[:-1] == leaf.node_id[:-1]
            assert sib.node_id != leaf.node_id

    def test_root_has_no_sibling(self):
        coins = PublicCoins.draw(np.arange(16), 16, 1.0, n_global=16, rng=4)
        with pytest.raises(ValueError):
            coins.sibling("")

    def test_unknown_player(self):
        coins = PublicCoins.draw(np.arange(8), 8, 1.0, n_global=8, rng=5)
        with pytest.raises(KeyError):
            coins.path_of(99)

    def test_matches_global_partition_sequence(self):
        # Same seed -> the engine's tree and the global recursion use the
        # same halves (checked indirectly by the bitwise test below, and
        # directly here for the root split).
        coins_a = PublicCoins.draw(np.arange(64), 64, 0.5, n_global=64, rng=7)
        coins_b = PublicCoins.draw(np.arange(64), 64, 0.5, n_global=64, rng=7)
        assert np.array_equal(coins_a.root.children[0].players, coins_b.root.children[0].players)


class TestZeroRadiusEngine:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_bitwise_equal_to_global(self, seed):
        inst = planted_instance(64, 64, 0.5, 0, rng=seed)
        o1 = ProbeOracle(inst)
        space = PrimitiveSpace(o1, np.arange(64))
        global_out = zero_radius(space, np.arange(64), 0.5, n_global=64, rng=seed + 100)
        o2 = ProbeOracle(inst)
        engine_out, _ = run_zero_radius_engine(o2, np.arange(64), 0.5, rng=seed + 100)
        assert np.array_equal(global_out, engine_out)

    def test_probe_counts_match_global(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=9)
        o1 = ProbeOracle(inst)
        space = PrimitiveSpace(o1, np.arange(64))
        zero_radius(space, np.arange(64), 0.5, n_global=64, rng=8)
        o2 = ProbeOracle(inst)
        _, result = run_zero_radius_engine(o2, np.arange(64), 0.5, rng=8)
        assert np.array_equal(o1.stats().per_player, o2.stats().per_player)
        assert result.probe_rounds == o1.stats().rounds

    def test_lockstep_rounds_at_least_probe_rounds(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=10)
        oracle = ProbeOracle(inst)
        _, result = run_zero_radius_engine(oracle, np.arange(64), 0.5, rng=12)
        assert result.rounds >= result.probe_rounds

    def test_community_recovered(self):
        inst = planted_instance(96, 96, 0.5, 0, rng=13)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out, _ = run_zero_radius_engine(oracle, np.arange(96), 0.5, rng=14)
        assert np.array_equal(out[comm.members], inst.prefs[comm.members])

    def test_player_subset(self):
        inst = planted_instance(48, 48, 1.0, 0, rng=15)
        players = np.arange(0, 48, 2)
        oracle = ProbeOracle(inst)
        out, result = run_zero_radius_engine(oracle, players, 1.0, rng=16)
        assert set(result.outputs) == set(players.tolist())
        assert (out[np.arange(1, 48, 2)] == NO_OUTPUT).all()
