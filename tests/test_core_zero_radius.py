"""Tests for Algorithm Zero Radius (Fig. 2 / Theorem 3.1)."""

import math

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.core.zero_radius import (
    NO_OUTPUT,
    PrimitiveSpace,
    SuperObjectSpace,
    _vote_candidates,
    zero_radius,
)
from repro.workloads.planted import planted_instance


class TestPrimitiveSpace:
    def test_probe_maps_local_to_global(self):
        prefs = np.asarray([[0, 1, 0, 1]], dtype=np.int8)
        oracle = ProbeOracle(prefs)
        space = PrimitiveSpace(oracle, np.asarray([3, 1]))
        assert space.n_objects == 2
        assert space.probe(0, 0) == 1  # global object 3
        assert space.probe(0, 1) == 1  # global object 1

    def test_probe_all(self):
        prefs = np.asarray([[0, 1, 1, 0]], dtype=np.int8)
        oracle = ProbeOracle(prefs)
        space = PrimitiveSpace(oracle, np.asarray([0, 2]))
        assert space.probe_all(0, np.asarray([0, 1])).tolist() == [0, 1]

    def test_probe_block_matches_probe_all(self):
        prefs = np.random.default_rng(0).integers(0, 2, (4, 6), dtype=np.int8)
        oracle = ProbeOracle(prefs)
        space = PrimitiveSpace(oracle, np.arange(6))
        block = space.probe_block(np.asarray([1, 3]), np.asarray([0, 2, 5]))
        assert block.tolist() == [
            prefs[1, [0, 2, 5]].tolist(),
            prefs[3, [0, 2, 5]].tolist(),
        ]

    def test_probe_block_charges_each_pair(self):
        prefs = np.zeros((3, 4), dtype=np.int8)
        oracle = ProbeOracle(prefs)
        space = PrimitiveSpace(oracle, np.arange(4))
        space.probe_block(np.asarray([0, 1]), np.asarray([0, 1, 2]))
        assert oracle.stats().per_player.tolist() == [3, 3, 0]

    def test_rejects_empty_objects(self):
        oracle = ProbeOracle(np.zeros((2, 2), dtype=np.int8))
        with pytest.raises(ValueError):
            PrimitiveSpace(oracle, np.asarray([], dtype=int))


class TestVoteCandidates:
    def test_popular_rows_returned(self):
        rows = np.asarray([[0, 1]] * 5 + [[1, 1]] * 2)
        out = _vote_candidates(rows, 3)
        assert out.shape[0] == 1
        assert out[0].tolist() == [0, 1]

    def test_multiple_popular(self):
        rows = np.asarray([[0, 1]] * 3 + [[1, 1]] * 3)
        out = _vote_candidates(rows, 3)
        assert out.shape[0] == 2

    def test_fallback_plurality(self):
        rows = np.asarray([[0, 0], [0, 1], [1, 1], [0, 0]])
        out = _vote_candidates(rows, 3)
        assert out.shape[0] >= 1
        assert out[0].tolist() == [0, 0]

    def test_fallback_capped(self):
        # 10 all-distinct rows, min_votes 2: cap = 5 candidates.
        rows = np.arange(10)[:, None] % 2 * 0 + np.eye(10, dtype=np.int64)
        out = _vote_candidates(rows.astype(np.int16), 2)
        assert out.shape[0] <= 5


class TestZeroRadius:
    def test_exact_recovery_whole_population(self):
        inst = planted_instance(64, 64, 1.0, 0, rng=0)
        oracle = ProbeOracle(inst)
        space = PrimitiveSpace(oracle, np.arange(64))
        out = zero_radius(space, np.arange(64), 1.0, n_global=64, rng=1)
        assert np.array_equal(out, inst.prefs)

    def test_exact_recovery_community(self):
        inst = planted_instance(128, 128, 0.5, 0, rng=2)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        space = PrimitiveSpace(oracle, np.arange(128))
        out = zero_radius(space, np.arange(128), 0.5, n_global=128, rng=3)
        assert np.array_equal(out[comm.members], inst.prefs[comm.members])

    def test_cost_below_solo(self):
        inst = planted_instance(256, 256, 0.5, 0, rng=4)
        oracle = ProbeOracle(inst)
        space = PrimitiveSpace(oracle, np.arange(256))
        zero_radius(space, np.arange(256), 0.5, n_global=256, rng=5)
        assert oracle.stats().rounds < 256 / 4

    def test_subset_of_players(self):
        inst = planted_instance(64, 32, 1.0, 0, rng=6)
        oracle = ProbeOracle(inst)
        players = np.arange(0, 64, 2)
        space = PrimitiveSpace(oracle, np.arange(32))
        out = zero_radius(space, players, 1.0, n_global=64, rng=7)
        assert np.array_equal(out[players], inst.prefs[players])
        non_players = np.arange(1, 64, 2)
        assert (out[non_players] == NO_OUTPUT).all()

    def test_subset_of_objects(self):
        inst = planted_instance(64, 64, 1.0, 0, rng=8)
        oracle = ProbeOracle(inst)
        objects = np.arange(10, 30)
        space = PrimitiveSpace(oracle, objects)
        out = zero_radius(space, np.arange(64), 1.0, n_global=64, rng=9)
        assert np.array_equal(out[:, : objects.size], inst.prefs[:, objects])

    def test_base_case_small_population(self):
        # Below the leaf threshold everyone just probes everything.
        inst = planted_instance(8, 8, 1.0, 0, rng=10)
        oracle = ProbeOracle(inst)
        space = PrimitiveSpace(oracle, np.arange(8))
        p = Params.practical().with_overrides(zr_min_leaf=16)  # force the leaf
        out = zero_radius(space, np.arange(8), 1.0, n_global=8, params=p, rng=11)
        assert np.array_equal(out, inst.prefs)
        assert oracle.stats().rounds == 8

    def test_rejects_bad_args(self):
        oracle = ProbeOracle(np.zeros((4, 4), dtype=np.int8))
        space = PrimitiveSpace(oracle, np.arange(4))
        with pytest.raises(ValueError):
            zero_radius(space, np.asarray([], dtype=int), 0.5, n_global=4)
        with pytest.raises(ValueError):
            zero_radius(space, np.arange(4), 0.0, n_global=4)

    def test_reproducible_with_seed(self):
        inst = planted_instance(64, 64, 0.5, 0, rng=12)
        outs = []
        for _ in range(2):
            oracle = ProbeOracle(inst)
            space = PrimitiveSpace(oracle, np.arange(64))
            outs.append(zero_radius(space, np.arange(64), 0.5, n_global=64, rng=13))
        assert np.array_equal(outs[0], outs[1])

    def test_non_members_get_some_output(self):
        inst = planted_instance(128, 128, 0.5, 0, rng=14)
        oracle = ProbeOracle(inst)
        space = PrimitiveSpace(oracle, np.arange(128))
        out = zero_radius(space, np.arange(128), 0.5, n_global=128, rng=15)
        assert not (out == NO_OUTPUT).any()


class TestSuperObjectSpace:
    def _setup(self):
        # 2 groups of 3 objects; candidates per group.
        prefs = np.asarray(
            [[0, 0, 0, 1, 1, 1], [1, 1, 1, 0, 0, 0]], dtype=np.int8
        )
        oracle = ProbeOracle(prefs)
        groups = [np.asarray([0, 1, 2]), np.asarray([3, 4, 5])]
        candidates = [
            np.asarray([[0, 0, 0], [1, 1, 1]], dtype=np.int8),
            np.asarray([[1, 1, 1], [0, 0, 0]], dtype=np.int8),
        ]
        return oracle, SuperObjectSpace(oracle, groups, candidates, bound=1)

    def test_probe_returns_best_candidate_index(self):
        oracle, space = self._setup()
        assert space.n_objects == 2
        assert space.probe(0, 0) == 0  # player0 group0 = 000 -> candidate 0
        assert space.probe(0, 1) == 0  # player0 group1 = 111 -> candidate 0 there
        assert space.probe(1, 0) == 1
        assert space.probe(1, 1) == 1

    def test_probe_all(self):
        _, space = self._setup()
        assert space.probe_all(0, np.asarray([0, 1])).tolist() == [0, 0]

    def test_probes_charged_to_player(self):
        oracle, space = self._setup()
        space.probe(0, 0)
        assert oracle.stats().per_player[0] >= 1
        assert oracle.stats().per_player[1] == 0

    def test_validation(self):
        oracle = ProbeOracle(np.zeros((2, 4), dtype=np.int8))
        with pytest.raises(ValueError):
            SuperObjectSpace(oracle, [], [], bound=0)
        with pytest.raises(ValueError):
            SuperObjectSpace(
                oracle,
                [np.asarray([0, 1])],
                [np.zeros((1, 3), dtype=np.int8)],  # width mismatch
                bound=0,
            )
        with pytest.raises(ValueError):
            SuperObjectSpace(
                oracle, [np.asarray([0])], [np.zeros((1, 1), dtype=np.int8)], bound=-1
            )

    def test_zero_radius_over_super_objects(self):
        # All players share candidate index 0 per group -> ZR over the
        # super-object space returns all-zero index vectors.
        prefs = np.tile(np.asarray([0, 0, 1, 1], dtype=np.int8), (32, 1))
        oracle = ProbeOracle(prefs)
        groups = [np.asarray([0, 1]), np.asarray([2, 3])]
        candidates = [
            np.asarray([[0, 0], [1, 1]], dtype=np.int8),
            np.asarray([[1, 1], [0, 0]], dtype=np.int8),
        ]
        space = SuperObjectSpace(oracle, groups, candidates, bound=0)
        out = zero_radius(space, np.arange(32), 1.0, n_global=32, rng=0)
        assert (out == 0).all()
