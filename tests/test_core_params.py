"""Tests for the Params constants object."""

import math

import pytest

from repro.core.params import Params


class TestPresets:
    def test_paper_constants(self):
        p = Params.paper()
        assert p.zr_leaf_c == 8.0
        assert p.sr_s_factor == 100.0
        assert p.sr_alpha_div == 5.0

    def test_practical_valid(self):
        Params.practical()  # __post_init__ validates

    def test_with_overrides(self):
        p = Params.practical().with_overrides(sr_s_factor=3.0)
        assert p.sr_s_factor == 3.0
        # original untouched (frozen dataclass semantics)
        assert Params.practical().sr_s_factor != 3.0 or True

    def test_frozen(self):
        with pytest.raises(Exception):
            Params.practical().zr_leaf_c = 9


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"zr_leaf_c": 0},
            {"zr_min_leaf": 0},
            {"zr_vote_frac": 0},
            {"zr_vote_frac": 1.5},
            {"sr_alpha_div": 0.5},
            {"sr_s_factor": 0},
            {"sr_final_bound_mult": 0.5},
            {"sr_k_min": 0},
            {"sr_k_factor": -1},
            {"lr_groups_c": 0},
            {"lr_alpha_div": 0.5},
            {"lr_coalesce_mult": 0},
            {"rs_probes_c": 0},
            {"rs_majority": 0.5},
            {"rs_majority": 1.5},
            {"unknown_d_base": 1.0},
        ],
    )
    def test_bad_constants_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Params(**kwargs)


class TestDerived:
    def test_leaf_threshold_scaling(self):
        p = Params.practical()
        t1 = p.zr_leaf_threshold(256, 0.5)
        t2 = p.zr_leaf_threshold(256, 0.25)
        assert t2 == pytest.approx(2 * t1, abs=1)
        assert p.zr_leaf_threshold(65536, 0.5) > t1

    def test_leaf_threshold_floor(self):
        p = Params.practical().with_overrides(zr_min_leaf=50)
        assert p.zr_leaf_threshold(4, 1.0) == 50

    def test_leaf_threshold_validation(self):
        with pytest.raises(ValueError):
            Params.practical().zr_leaf_threshold(0, 0.5)
        with pytest.raises(ValueError):
            Params.practical().zr_leaf_threshold(10, 0)

    def test_vote_threshold_at_least_one(self):
        p = Params.practical()
        assert p.zr_vote_threshold(0.01, 3) == 1

    def test_vote_threshold_formula(self):
        p = Params.practical()
        assert p.zr_vote_threshold(0.5, 100) == math.ceil(0.5 * 0.5 * 100)

    def test_sr_num_parts(self):
        p = Params.practical()
        assert p.sr_num_parts(0) == 1
        assert p.sr_num_parts(4) == 8
        assert p.sr_num_parts(9) == 27

    def test_sr_num_parts_factor(self):
        p = Params.practical().with_overrides(sr_s_factor=2.0)
        assert p.sr_num_parts(4) == 16

    def test_sr_num_parts_rejects_negative(self):
        with pytest.raises(ValueError):
            Params.practical().sr_num_parts(-1)

    def test_confidence_floor(self):
        p = Params.practical().with_overrides(sr_k_min=7)
        assert p.sr_confidence(4) == 7

    def test_confidence_grows_with_n(self):
        p = Params.practical()
        assert p.sr_confidence(2**20) > p.sr_confidence(16)

    def test_popularity_threshold(self):
        p = Params.practical()
        assert p.sr_popularity_threshold(0.5, 100) == 10
        assert p.sr_popularity_threshold(0.001, 10) == 1

    def test_lr_num_groups(self):
        p = Params.practical()
        assert p.lr_num_groups(1, 1000) == 1
        assert p.lr_num_groups(100, 1000) == math.ceil(100 / math.log(1000))

    def test_lr_player_copies(self):
        p = Params.practical()
        assert p.lr_player_copies(10, 0.5, 1000) == 1
        assert p.lr_player_copies(600, 0.5, 100) == 12

    def test_lr_lambda_min_with_d(self):
        p = Params.practical()
        assert p.lr_lambda(2, 10**6) == 2
        big = p.lr_lambda(10**6, 1000)
        assert big == math.ceil(p.lr_small_d_c * math.log(1000))

    def test_small_d_threshold(self):
        p = Params.practical()
        assert p.small_d_threshold(1000) == math.ceil(p.lr_small_d_c * math.log(1000))

    def test_rs_num_probes(self):
        p = Params.practical()
        assert p.rs_num_probes(2) >= 1
        assert p.rs_num_probes(1024) == math.ceil(p.rs_probes_c * 10)
