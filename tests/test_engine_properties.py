"""Property-based engine-vs-global equivalence.

The strongest internal validation of the repository: on *arbitrary*
small configurations (shape, α, D, seeds), the literal lockstep
execution must reproduce the fast global simulation bitwise — outputs
*and* per-player probe counts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billboard.oracle import ProbeOracle
from repro.core.small_radius import small_radius
from repro.core.zero_radius import PrimitiveSpace, zero_radius
from repro.engine import run_small_radius_engine, run_zero_radius_engine
from repro.workloads.planted import planted_instance

seeds = st.integers(0, 2**31 - 1)


class TestZeroRadiusEquivalence:
    @given(st.integers(16, 64), st.sampled_from([0.5, 1.0]), seeds, seeds)
    @settings(max_examples=20, deadline=None)
    def test_bitwise_any_config(self, n, alpha, inst_seed, coin_seed):
        inst = planted_instance(n, n, alpha, 0, rng=inst_seed)
        o1 = ProbeOracle(inst)
        g = zero_radius(
            PrimitiveSpace(o1, np.arange(n)), np.arange(n), alpha, n_global=n, rng=coin_seed
        )
        o2 = ProbeOracle(inst)
        e, _ = run_zero_radius_engine(o2, np.arange(n), alpha, rng=coin_seed)
        assert np.array_equal(g, e)
        assert np.array_equal(o1.stats().per_player, o2.stats().per_player)

    @given(st.integers(16, 48), seeds, seeds)
    @settings(max_examples=10, deadline=None)
    def test_bitwise_player_subsets(self, n, inst_seed, coin_seed):
        inst = planted_instance(n, n, 1.0, 0, rng=inst_seed)
        players = np.arange(0, n, 2)
        o1 = ProbeOracle(inst)
        g = zero_radius(
            PrimitiveSpace(o1, np.arange(n)), players, 1.0, n_global=n, rng=coin_seed
        )
        o2 = ProbeOracle(inst)
        e, _ = run_zero_radius_engine(o2, players, 1.0, rng=coin_seed)
        assert np.array_equal(g, e)


class TestSmallRadiusEquivalence:
    @given(st.integers(24, 48), st.integers(0, 3), seeds, seeds)
    @settings(max_examples=10, deadline=None)
    def test_bitwise_any_config(self, n, D, inst_seed, coin_seed):
        inst = planted_instance(n, n, 0.5, D, rng=inst_seed)
        players, objects = np.arange(n), np.arange(n)
        o1 = ProbeOracle(inst)
        g = small_radius(o1, players, objects, 0.5, D, rng=coin_seed, K=2)
        o2 = ProbeOracle(inst)
        e, _ = run_small_radius_engine(o2, players, objects, 0.5, D, rng=coin_seed, K=2)
        assert np.array_equal(g, e)
        assert np.array_equal(o1.stats().per_player, o2.stats().per_player)
