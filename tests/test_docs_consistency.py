"""Meta-tests: documentation stays consistent with the code.

Production repositories rot at the seams between docs and code; these
tests pin the load-bearing references (experiment ids, example files,
bench targets, public API names) so a rename breaks CI, not a reader.
"""

import re
from pathlib import Path

import pytest

import repro
from repro.experiments import REGISTRY

ROOT = Path(__file__).resolve().parent.parent


class TestDesignDoc:
    def test_design_lists_every_experiment(self):
        text = (ROOT / "DESIGN.md").read_text()
        for eid in REGISTRY:
            assert f"| {eid} |" in text, f"DESIGN.md §2 index is missing {eid}"

    def test_design_bench_targets_exist(self):
        text = (ROOT / "DESIGN.md").read_text()
        for target in re.findall(r"`benchmarks/(bench_\w+\.py)`", text):
            assert (ROOT / "benchmarks" / target).exists(), f"missing bench target {target}"


class TestReadme:
    def test_examples_table_matches_files(self):
        text = (ROOT / "README.md").read_text()
        for name in re.findall(r"\| `(\w+\.py)` \|", text):
            assert (ROOT / "examples" / name).exists(), f"README lists missing example {name}"

    def test_every_example_file_listed(self):
        text = (ROOT / "README.md").read_text()
        for path in (ROOT / "examples").glob("*.py"):
            assert path.name in text, f"example {path.name} not mentioned in README"

    def test_quickstart_code_runs(self):
        # The README quickstart block, extracted and executed.
        text = (ROOT / "README.md").read_text()
        match = re.search(r"```python\n(.*?)```", text, re.DOTALL)
        assert match, "README quickstart block missing"
        code = match.group(1)
        exec(compile(code, "<readme>", "exec"), {})  # noqa: S102 - trusted repo content


class TestExperimentsDoc:
    def test_experiments_md_covers_core_ids(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for i in range(1, 13):
            assert f"E{i} " in text or f"E{i} —" in text or f"(E{i}" in text, f"EXPERIMENTS.md missing E{i}"


class TestBenchmarkCoverage:
    def test_every_experiment_has_a_bench(self):
        bench_text = "".join(p.read_text() for p in (ROOT / "benchmarks").glob("bench_[ex]*.py"))
        for eid in REGISTRY:
            assert f'"{eid}"' in bench_text, f"no benchmark wraps experiment {eid}"


class TestPublicApi:
    def test_api_doc_mentions_top_level_exports(self):
        text = (ROOT / "docs" / "api.md").read_text()
        missing = [name for name in repro.__all__ if name not in text and name != "__version__"]
        assert not missing, f"docs/api.md missing top-level exports: {missing}"
