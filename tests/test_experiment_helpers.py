"""Unit tests for the experiment modules' internal helpers.

The experiments themselves run end-to-end in the benchmark suite; these
tests pin down the helper functions that construct their workloads and
measurements.
"""

import numpy as np
import pytest

from repro.experiments.exp_lemma41 import _low_diameter_set
from repro.experiments.exp_rselect import _adversarial_case
from repro.experiments.exp_select import _make_case
from repro.experiments.exp_coalesce import _clustered_multiset
from repro.experiments.exp_svd_breakdown import _sv_gap
from repro.metrics.hamming import diameter, hamming, hamming_to_each


class TestSelectCase:
    @pytest.mark.parametrize("k,D", [(2, 0), (4, 3), (8, 10)])
    def test_one_candidate_within_d(self, k, D):
        gen = np.random.default_rng(0)
        for _ in range(10):
            hidden, cands = _make_case(k, 64, D, gen)
            assert cands.shape == (k, 64)
            assert hamming_to_each(hidden, cands).min() <= D


class TestRSelectCase:
    def test_best_candidate_at_d_min(self):
        gen = np.random.default_rng(1)
        hidden, cands = _adversarial_case(4, 256, 8, gen)
        dists = hamming_to_each(hidden, cands)
        assert dists.min() <= 8
        # decoys strictly worse
        assert np.sort(dists)[1] > 8

    def test_k_rows(self):
        gen = np.random.default_rng(2)
        _, cands = _adversarial_case(6, 128, 4, gen)
        assert cands.shape[0] == 6


class TestLemma41Set:
    def test_diameter_bounded(self):
        gen = np.random.default_rng(3)
        for d in (4, 9, 16):
            V = _low_diameter_set(30, 256, d, gen)
            assert diameter(V) <= d

    def test_disagreements_concentrated(self):
        gen = np.random.default_rng(4)
        V = _low_diameter_set(30, 512, 8, gen)
        differing = np.flatnonzero((V != V[0]).any(axis=0))
        assert differing.size <= 2 * 8  # window of 2d coords


class TestClusteredMultiset:
    def test_vt_within_d(self):
        gen = np.random.default_rng(5)
        V, vt_idx = _clustered_multiset(40, 64, 6, 0.5, 1, gen)
        assert diameter(V[vt_idx]) <= 6
        assert vt_idx.size == 20


class TestSvGap:
    def test_rank_one_matrix_has_huge_gap(self):
        row = np.random.default_rng(6).integers(0, 2, 64, dtype=np.int8)
        m = np.tile(row, (64, 1))
        assert _sv_gap(m, 1) > 100

    def test_random_matrix_has_no_gap(self):
        m = np.random.default_rng(7).integers(0, 2, (64, 64), dtype=np.int8)
        assert _sv_gap(m, 4) < 3
