"""Tests for Algorithm Small Radius (Fig. 4 / Theorem 4.4)."""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.core.small_radius import _popular_rows, small_radius
from repro.core.zero_radius import NO_OUTPUT
from repro.metrics.evaluation import evaluate
from repro.workloads.planted import planted_instance


class TestPopularRows:
    def test_threshold_respected(self):
        rows = np.asarray([[0, 1]] * 4 + [[1, 0]] * 2)
        out = _popular_rows(rows, 3)
        assert out.shape[0] == 1

    def test_fallback_capped(self):
        rows = np.eye(8, dtype=np.int16)
        out = _popular_rows(rows, 4)
        assert 1 <= out.shape[0] <= 2


class TestSmallRadius:
    def test_error_bound_d2(self, d4_instance):
        inst = planted_instance(128, 128, 0.5, 2, rng=31)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out = small_radius(oracle, np.arange(128), np.arange(128), 0.5, 2, rng=7)
        rep = evaluate(out.astype(np.int8), inst.prefs, comm.members, diam=comm.diameter)
        assert rep.discrepancy <= 5 * 2

    def test_error_bound_d4(self, d4_instance):
        comm = d4_instance.main_community()
        oracle = ProbeOracle(d4_instance)
        out = small_radius(oracle, np.arange(128), np.arange(128), 0.5, 4, rng=8)
        rep = evaluate(out.astype(np.int8), d4_instance.prefs, comm.members, diam=comm.diameter)
        assert rep.discrepancy <= 5 * 4

    def test_d_zero_degenerates_to_zero_radius_quality(self):
        inst = planted_instance(96, 96, 0.5, 0, rng=32)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out = small_radius(oracle, np.arange(96), np.arange(96), 0.5, 0, rng=9)
        assert np.array_equal(out[comm.members].astype(np.int8), inst.prefs[comm.members])

    def test_object_subset(self):
        inst = planted_instance(96, 128, 0.5, 2, rng=33)
        comm = inst.main_community()
        objects = np.arange(16, 80)
        oracle = ProbeOracle(inst)
        out = small_radius(oracle, np.arange(96), objects, 0.5, 2, rng=10)
        sub_truth = inst.prefs[:, objects]
        errs = (out[comm.members].astype(np.int8) != sub_truth[comm.members]).sum(axis=1)
        assert errs.max() <= 5 * 2

    def test_player_subset_rows_marked(self):
        inst = planted_instance(64, 64, 1.0, 2, rng=34)
        players = np.arange(0, 64, 2)
        oracle = ProbeOracle(inst)
        out = small_radius(oracle, players, np.arange(64), 1.0, 2, rng=11)
        others = np.arange(1, 64, 2)
        assert (out[others] == NO_OUTPUT).all()
        assert not (out[players] == NO_OUTPUT).any()

    def test_k_parameter_override(self):
        inst = planted_instance(64, 64, 0.5, 2, rng=35)
        oracle = ProbeOracle(inst)
        out = small_radius(oracle, np.arange(64), np.arange(64), 0.5, 2, rng=12, K=1)
        assert out.shape == (64, 64)

    def test_k1_cheaper_than_k4(self):
        inst = planted_instance(64, 64, 0.5, 2, rng=36)
        costs = []
        for K in (1, 4):
            oracle = ProbeOracle(inst)
            small_radius(oracle, np.arange(64), np.arange(64), 0.5, 2, rng=13, K=K)
            costs.append(oracle.stats().rounds)
        assert costs[0] < costs[1]

    def test_rejects_bad_args(self):
        oracle = ProbeOracle(np.zeros((4, 4), dtype=np.int8))
        players, objects = np.arange(4), np.arange(4)
        with pytest.raises(ValueError):
            small_radius(oracle, np.asarray([], dtype=int), objects, 0.5, 1)
        with pytest.raises(ValueError):
            small_radius(oracle, players, np.asarray([], dtype=int), 0.5, 1)
        with pytest.raises(ValueError):
            small_radius(oracle, players, objects, 0.0, 1)
        with pytest.raises(ValueError):
            small_radius(oracle, players, objects, 0.5, -1)
        with pytest.raises(ValueError):
            small_radius(oracle, players, objects, 0.5, 1, K=0)

    def test_parts_capped_by_objects(self):
        # s = D^{3/2} may exceed the object count; must not crash.
        inst = planted_instance(48, 8, 0.5, 4, rng=37)
        oracle = ProbeOracle(inst)
        out = small_radius(oracle, np.arange(48), np.arange(8), 0.5, 4, rng=14)
        assert out.shape == (48, 8)

    def test_reproducible(self):
        inst = planted_instance(64, 64, 0.5, 2, rng=38)
        outs = []
        for _ in range(2):
            oracle = ProbeOracle(inst)
            outs.append(small_radius(oracle, np.arange(64), np.arange(64), 0.5, 2, rng=15))
        assert np.array_equal(outs[0], outs[1])
