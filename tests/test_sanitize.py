"""Tests for the REPRO_SANITIZE runtime sanitizer and its harness.

The two seeded bugs from the issue are pinned here: a post-log variant
that stores the watermark *before* the record body must be rejected
(writer-side at its own commit point, reader-side under adversarial
interleaving), while the stock protocol must replay clean under every
enumerated schedule.
"""

from __future__ import annotations

import os
import struct
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.billboard.postlog import (
    _REC,
    KIND_BARRIER,
    KIND_PACKED,
    PostLog,
    SharedBillboard,
    _align8,
)
from repro.sanitize import (
    InterleavingHarness,
    SanitizeError,
    SanitizedPostLog,
    interleavings,
    is_enabled,
    stepped_append,
    stepped_read,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture
def log():
    log = PostLog.create(1 << 14)
    yield log
    log.close()


@pytest.fixture
def sanitized_log():
    log = SanitizedPostLog.create(1 << 14)
    yield log
    log.close()


# ----------------------------------------------------- the env switch


def test_env_gating(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not is_enabled()
    plain = PostLog.create(1 << 12)
    assert type(plain) is PostLog
    plain.close()

    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert is_enabled()
    checked = PostLog.create(1 << 12)
    try:
        assert type(checked) is SanitizedPostLog
        # attach (same-process borrow) inherits the sanitized class too
        reader = PostLog.attach(checked.name)
        assert type(reader) is SanitizedPostLog
    finally:
        checked.close()

    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not is_enabled()


# ------------------------------------------------- writer-side checks


def test_sanitized_log_passes_correct_protocol(sanitized_log):
    payload = bytes(range(16))
    sanitized_log.append(KIND_PACKED, 0, "chan", 1, payload, rows=1, m=128)
    sanitized_log.append(KIND_BARRIER, 1, "stage", 0)
    epoch, records = sanitized_log.read(0)
    assert len(records) == 2
    assert records[0].payload == payload
    assert records[1].kind == KIND_BARRIER


class _WatermarkFirstLog(SanitizedPostLog):
    """The seeded bug: publishes the watermark before the record body."""

    def _append(self, kind, shard, channel, seq, payload, rows, m):
        name_b = channel.encode("utf-8")
        size = _align8(_REC.size + len(name_b) + len(payload))
        committed = self.committed
        self._publish(committed, committed + size)  # BUG: bytes not down yet
        self._write_body(committed, size, kind, shard, seq, name_b, payload, rows, m)


def test_watermark_first_variant_rejected_at_commit():
    bug = _WatermarkFirstLog.create(1 << 12)
    try:
        with pytest.raises(SanitizeError, match="not down before commit|size field"):
            bug.append(KIND_PACKED, 0, "chan", 1, b"\x01" * 4, rows=1, m=32)
    finally:
        bug.close()


def test_lost_update_detected(sanitized_log):
    sanitized_log.append(KIND_BARRIER, 0, "a", 0)
    # Re-publishing from a stale base watermark = two writers raced.
    with pytest.raises(SanitizeError, match="lost update"):
        sanitized_log._publish(0, 8)


def test_watermark_must_advance(sanitized_log):
    with pytest.raises(SanitizeError, match="positive multiple of 8"):
        sanitized_log._publish(0, 0)
    with pytest.raises(SanitizeError, match="positive multiple of 8"):
        sanitized_log._publish(0, 12)


# ------------------------------------------------- reader-side checks


def test_reader_rejects_epoch_regression(sanitized_log):
    sanitized_log.append(KIND_BARRIER, 0, "a", 0)
    sanitized_log.read(0)
    # Corrupt the segment: rewind the watermark behind the reader's back.
    struct.pack_into("<Q", sanitized_log._shm.buf, 16, 0)
    with pytest.raises(SanitizeError, match="epoch regressed"):
        sanitized_log.read(0)


def test_reader_rejects_record_straddling_epoch(log):
    """A sanitized reader on a *plain* log whose watermark ran ahead of
    the record bytes — the cross-process torn-write picture."""
    log.append(KIND_BARRIER, 0, "a", 0)
    reader = PostLog.attach(log.name)  # plain borrow...
    checked = SanitizedPostLog(reader._shm, owner=False, borrowed=True)
    # Push the watermark past the committed bytes (zeros follow).
    struct.pack_into("<Q", log._shm.buf, 16, log.committed + 64)
    with pytest.raises(SanitizeError, match="invalid size|straddles"):
        checked.read(0)


# ------------------------------------------------ interleaving harness


def test_interleavings_enumeration():
    assert list(interleavings({"w": 2, "r": 1})) == [
        ("r", "w", "w"),
        ("w", "r", "w"),
        ("w", "w", "r"),
    ]
    assert len(list(interleavings({"w": 3, "r": 2}))) == 10  # C(5,2)


def test_stock_protocol_clean_under_all_schedules():
    """Crash-safety, exhaustively: under every interleaving of a
    sanitized append (3 steps) with two epoch reads, each read observes
    either nothing or the complete record — never a torn state."""
    state: dict[str, PostLog] = {}
    results: list = []
    payload = b"\xab" * 8

    def reset() -> None:
        if "log" in state:
            state["log"].close()
        state["log"] = SanitizedPostLog.create(1 << 12)
        results.clear()

    harness = InterleavingHarness(
        {
            "writer": lambda: stepped_append(
                state["log"], KIND_PACKED, 0, "chan", 1, payload, rows=1, m=64
            ),
            "reader": lambda: stepped_read(state["log"], results),
            "reader2": lambda: stepped_read(state["log"], results),
        },
        reset=reset,
    )
    record_size = _align8(_REC.size + len(b"chan") + len(payload))
    schedules = list(interleavings({"writer": 3, "reader": 2, "reader2": 2}))
    assert len(schedules) == 210  # 7! / (3! 2! 2!)
    for schedule in schedules:
        outcome = harness.run(schedule)
        assert outcome.error is None, (outcome.schedule, outcome.error)
        for epoch, records in results:  # the reads of THIS schedule
            assert (epoch, len(records)) in ((0, 0), (record_size, 1)), schedule
    state["log"].close()


def test_buggy_writer_caught_by_sanitized_reader_under_interleaving():
    """Reader-side detection: a *raw* watermark-first writer (no writer
    checks to save it) is caught by the sanitized reader on exactly the
    schedules where the torn window is observed."""
    state: dict[str, PostLog] = {}
    results: list = []

    def buggy_append():
        log = state["raw"]
        name_b = b"chan"
        size = _align8(_REC.size + len(name_b) + 8)
        committed = log.committed
        yield "reserve"
        log._publish(committed, committed + size)  # BUG: publish first
        yield "publish"
        log._write_body(committed, size, KIND_PACKED, 0, 1, name_b, b"\x01" * 8, 1, 64)
        yield "body"

    def reset() -> None:
        if "seg" in state:
            state["seg"].close()
        # create() may hand back a sanitized log when REPRO_SANITIZE=1 is
        # already in the environment (the CI sanitizer leg) — write
        # through an explicitly *plain* borrow so the buggy writer stays
        # unchecked and the reader alone must catch the tear.
        state["seg"] = PostLog.create(1 << 12)
        state["raw"] = PostLog(state["seg"]._shm, owner=False, borrowed=True)
        state["reader"] = SanitizedPostLog(state["seg"]._shm, owner=False, borrowed=True)
        results.clear()

    harness = InterleavingHarness(
        {
            "writer": buggy_append,
            "reader": lambda: stepped_read(state["reader"], results),
        },
        reset=reset,
    )
    outcomes = list(harness.run_all({"writer": 3, "reader": 2}))
    caught = [o for o in outcomes if isinstance(o.error, SanitizeError)]
    # The torn window is any schedule whose read lands after "publish"
    # but before "body" — at least one enumeration must hit it.
    assert caught, "no schedule observed the torn write"
    for outcome in caught:
        labels = [label for _, label in outcome.trace]
        # The failing read raised between the buggy publish and the body
        # write — the torn window, exactly.
        assert "publish" in labels and "body" not in labels, outcome.trace
    state["seg"].close()


# -------------------------------------- sanitized end-to-end behaviour


def test_shared_billboard_round_trip_sanitized(monkeypatch):
    """Two shards replicating through a sanitized log behave identically
    to the plain protocol — the checks are pure assertions."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    log = PostLog.create(1 << 16)
    assert type(log) is SanitizedPostLog
    try:
        a = SharedBillboard(4, 8, log=log, shard=0, n_shards=2)
        b = SharedBillboard(4, 8, log=PostLog.attach(log.name), shard=1, n_shards=2)
        a.post_vectors("p0", np.array([[0, 1, 0, 1, 1, 0, 1, 0]], dtype=np.int16))
        b.post_vectors("p1", np.array([[1, 1, 1, 0, 0, 0, 0, 1]], dtype=np.int16))
        a.post_barrier("stage-0")
        b.post_barrier("stage-0")
        a.sync()
        b.sync()
        assert a.barrier_complete("stage-0") and b.barrier_complete("stage-0")
        np.testing.assert_array_equal(a.read_vectors("p1"), b.read_vectors("p1"))
        np.testing.assert_array_equal(a.read_vectors("p0"), b.read_vectors("p0"))
    finally:
        log.close()


def test_serve_smoke_bitwise_equal_under_sanitizer():
    """The acceptance gate in miniature: a small serve-to-completion run
    produces byte-identical results with and without REPRO_SANITIZE=1."""
    script = (
        "import json, sys\n"
        "from repro.serve import ServeConfig, serve\n"
        "from repro.workloads.registry import make_instance\n"
        "inst = make_instance('planted', 24, 24, 0.5, 2, rng=5)\n"
        "cfg = ServeConfig(seed=3, max_phases=2, d_max=4, workers=2, window=8, probes_per_request=8)\n"
        "with serve(inst, cfg) as rt:\n"
        "    out = rt.run_to_completion()\n"
        "sys.stdout.write(json.dumps(out.tolist()))\n"
    )
    runs = {}
    for mode in ("0", "1"):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"), REPRO_SANITIZE=mode)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        runs[mode] = proc.stdout
    assert runs["0"] and runs["0"] == runs["1"]
