"""Tests for Algorithm Large Radius (Fig. 5 / Theorem 5.4)."""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.large_radius import large_radius
from repro.core.params import Params
from repro.metrics.evaluation import evaluate
from repro.utils.validation import WILDCARD
from repro.workloads.planted import planted_instance


class TestLargeRadius:
    def test_constant_stretch(self):
        inst = planted_instance(192, 192, 0.5, 48, rng=41)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out = large_radius(oracle, 0.5, 48, rng=6)
        rep = evaluate(out, inst.prefs, comm.members, diam=comm.diameter)
        assert rep.stretch <= 8.0

    def test_output_values_legal(self):
        inst = planted_instance(96, 96, 0.5, 24, rng=42)
        oracle = ProbeOracle(inst)
        out = large_radius(oracle, 0.5, 24, rng=7)
        assert np.isin(out, (0, 1, WILDCARD)).all()
        assert out.shape == (96, 96)

    def test_community_members_agree(self):
        # Theorem 5.4's mechanism: all typical players end with the same
        # composed vector.
        inst = planted_instance(128, 128, 0.5, 32, rng=43)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out = large_radius(oracle, 0.5, 32, rng=8)
        member_rows = out[comm.members]
        agree_frac = (member_rows == member_rows[0]).all(axis=1).mean()
        assert agree_frac >= 0.9

    def test_wildcards_bounded(self):
        inst = planted_instance(128, 128, 0.5, 32, rng=44)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out = large_radius(oracle, 0.5, 32, rng=9)
        wildcards = (out[comm.members] == WILDCARD).sum(axis=1)
        # O(D/alpha) bound with a generous constant.
        assert wildcards.max() <= 4 * 32 / 0.5

    def test_rejects_bad_args(self):
        oracle = ProbeOracle(np.zeros((8, 8), dtype=np.int8))
        with pytest.raises(ValueError):
            large_radius(oracle, 0.0, 16)
        with pytest.raises(ValueError):
            large_radius(oracle, 0.5, 0)

    def test_reproducible(self):
        inst = planted_instance(96, 96, 0.5, 24, rng=45)
        outs = []
        for _ in range(2):
            oracle = ProbeOracle(inst)
            outs.append(large_radius(oracle, 0.5, 24, rng=10))
        assert np.array_equal(outs[0], outs[1])

    def test_tiny_population_no_crash(self):
        inst = planted_instance(16, 16, 0.5, 8, rng=46)
        oracle = ProbeOracle(inst)
        out = large_radius(oracle, 0.5, 8, rng=11)
        assert out.shape == (16, 16)

    def test_num_groups_capped_by_objects(self):
        # Huge D relative to m: group count would exceed m.
        inst = planted_instance(64, 16, 0.5, 16, rng=47)
        oracle = ProbeOracle(inst)
        out = large_radius(oracle, 0.5, 200, rng=12)
        assert out.shape == (64, 16)

    def test_error_scales_with_d_not_m(self):
        # Doubling D should roughly double the error cap; it must stay
        # far below m for community members.
        inst = planted_instance(192, 192, 0.5, 64, rng=48)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out = large_radius(oracle, 0.5, 64, rng=13)
        rep = evaluate(out, inst.prefs, comm.members, diam=comm.diameter)
        assert rep.discrepancy < 192 * 0.9
        assert rep.discrepancy <= 8 * comm.diameter
