"""Fault-injection tests for the round engine.

Documents the engine's failure semantics: player exceptions and budget
exhaustion propagate out of :meth:`RoundScheduler.run` (a distributed
implementation would crash the corresponding node; the simulator
surfaces it to the caller), and partial state stays consistent.
"""

import numpy as np
import pytest

from repro.billboard.exceptions import BudgetExceededError
from repro.billboard.oracle import ProbeOracle
from repro.engine import Probe, RoundScheduler, Wait, run_zero_radius_engine
from repro.workloads.planted import planted_instance


def _oracle(n=4, m=8, **kw):
    rng = np.random.default_rng(0)
    return ProbeOracle(rng.integers(0, 2, (n, m), dtype=np.int8), **kw)


class TestPlayerExceptions:
    def test_player_exception_propagates(self):
        oracle = _oracle()

        def crasher():
            yield Probe(0)
            raise RuntimeError("player died")

        with pytest.raises(RuntimeError, match="player died"):
            RoundScheduler(oracle, {0: crasher()}).run()

    def test_probes_before_crash_remain_charged(self):
        oracle = _oracle()

        def crasher():
            yield Probe(0)
            yield Probe(1)
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            RoundScheduler(oracle, {0: crasher()}).run()
        assert oracle.stats().per_player[0] == 2
        assert oracle.billboard.is_revealed(0, 0)


class TestBudgetExhaustion:
    def test_budget_error_propagates(self):
        oracle = _oracle(budget=2)

        def hungry():
            for j in range(5):
                yield Probe(j)
            return np.zeros(1)

        with pytest.raises(BudgetExceededError) as exc:
            RoundScheduler(oracle, {0: hungry()}).run()
        assert exc.value.player == 0

    def test_zero_radius_engine_budget_exhaustion(self):
        inst = planted_instance(32, 32, 0.5, 0, rng=1)
        oracle = ProbeOracle(inst, budget=3)
        with pytest.raises(BudgetExceededError):
            run_zero_radius_engine(oracle, np.arange(32), 0.5, rng=2)

    def test_billboard_consistent_after_budget_crash(self):
        inst = planted_instance(32, 32, 0.5, 0, rng=3)
        oracle = ProbeOracle(inst, budget=3)
        try:
            run_zero_radius_engine(oracle, np.arange(32), 0.5, rng=4)
        except BudgetExceededError:
            pass
        mask = oracle.billboard.revealed_mask()
        vals = oracle.billboard.revealed_values()
        assert (vals[mask] == inst.prefs[mask]).all()


class TestWaitOnlyDeadlockGuard:
    def test_mutual_wait_hits_round_cap(self):
        oracle = _oracle()
        board = oracle.billboard

        def waiter(channel):
            def program():
                while not board.has_channel(channel):
                    yield Wait()
                return np.zeros(1)

            return program()

        # Two players each waiting for a channel only the other would
        # post (and never does): the scheduler's max_rounds guard fires.
        with pytest.raises(RuntimeError, match="still running"):
            RoundScheduler(oracle, {0: waiter("a"), 1: waiter("b")}).run(max_rounds=25)
