"""Cross-cutting property-based tests of the algorithm tower.

These complement the per-module unit tests with invariants that must
hold on *arbitrary* small inputs: output domains, determinism, cost
sanity, and consistency between the metrics and the algorithms.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billboard.oracle import ProbeOracle
from repro.core.coalesce import coalesce
from repro.core.main import find_preferences
from repro.core.params import Params
from repro.core.small_radius import small_radius
from repro.core.zero_radius import NO_OUTPUT, PrimitiveSpace, zero_radius
from repro.metrics.evaluation import discrepancy, stretch
from repro.metrics.tilde import tilde_dist
from repro.utils.validation import WILDCARD
from repro.workloads.planted import planted_instance

# Small but non-trivial instance shapes.
shapes = st.tuples(st.integers(8, 40), st.integers(8, 40))
seeds = st.integers(0, 2**31 - 1)


class TestZeroRadiusProperties:
    @given(shapes, seeds, st.sampled_from([0.5, 1.0]))
    @settings(max_examples=25, deadline=None)
    def test_output_domain_and_coverage(self, shape, seed, alpha):
        n, m = shape
        inst = planted_instance(n, m, alpha, 0, rng=seed)
        oracle = ProbeOracle(inst)
        space = PrimitiveSpace(oracle, np.arange(m))
        out = zero_radius(space, np.arange(n), alpha, n_global=n, rng=seed + 1)
        # all players covered, all values binary
        assert not (out == NO_OUTPUT).any()
        assert np.isin(out, (0, 1)).all()

    @given(shapes, seeds)
    @settings(max_examples=15, deadline=None)
    def test_total_work_at_most_solo(self, shape, seed):
        # Zero Radius never does more *total* work than everyone probing
        # everything (leaves partition the object space; selects add
        # candidate-bounded extras, bounded by the vote cap).
        n, m = shape
        inst = planted_instance(n, m, 1.0, 0, rng=seed)
        oracle = ProbeOracle(inst)
        space = PrimitiveSpace(oracle, np.arange(m))
        zero_radius(space, np.arange(n), 1.0, n_global=n, rng=seed + 1)
        assert oracle.stats().total <= 2 * n * m


class TestSmallRadiusProperties:
    @given(seeds, st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_output_domain(self, seed, D):
        n = 32
        inst = planted_instance(n, n, 0.5, D, rng=seed)
        oracle = ProbeOracle(inst)
        out = small_radius(oracle, np.arange(n), np.arange(n), 0.5, D, rng=seed + 1, K=2)
        assert np.isin(out, (0, 1)).all()


class TestMainDispatchProperties:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_outputs_always_full_shape(self, seed):
        inst = planted_instance(24, 24, 0.5, 0, rng=seed)
        oracle = ProbeOracle(inst)
        res = find_preferences(oracle, 0.5, 0, rng=seed + 1)
        assert res.outputs.shape == (24, 24)
        assert res.stats.per_player.shape == (24,)
        assert (res.stats.per_player >= 0).all()


class TestCoalesceProperties:
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(4, 20),
        st.integers(4, 24),
        st.integers(0, 4),
        st.sampled_from([0.3, 0.5]),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_on_arbitrary_multisets(self, seed, M, L, D, alpha):
        gen = np.random.default_rng(seed)
        V = gen.integers(0, 2, (M, L), dtype=np.int8)
        res = coalesce(V, D, alpha)
        # output values legal
        assert np.isin(res.vectors, (0, 1, WILDCARD)).all()
        # no two outputs within the merge radius
        for i in range(res.size):
            for j in range(i + 1, res.size):
                assert tilde_dist(res.vectors[i], res.vectors[j]) > 5 * D
        # determinism
        assert np.array_equal(res.vectors, coalesce(V, D, alpha).vectors)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_cover_never_larger_than_one_over_alpha(self, seed):
        gen = np.random.default_rng(seed)
        V = gen.integers(0, 2, (16, 12), dtype=np.int8)
        res = coalesce(V, 2, 0.25)
        assert res.cover.shape[0] <= 4
        assert res.size <= 4


class TestMetricAlgorithmConsistency:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_stretch_definition(self, seed):
        inst = planted_instance(24, 24, 0.5, 2, rng=seed)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        res = find_preferences(oracle, 0.5, 2, rng=seed + 1)
        d = discrepancy(res.outputs, inst.prefs, comm.members)
        s = stretch(res.outputs, inst.prefs, comm.members, diam=comm.diameter)
        assert s == d / max(comm.diameter, 1)
