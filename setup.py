"""Setuptools shim.

The metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose pip/setuptools
lack PEP-660 editable-install support (no ``wheel`` package available).
"""

from setuptools import setup

setup()
