"""Benchmark X8 — Extension: the §3 virtual-player reduction for m >> n.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_x8_virtual(benchmark):
    """Extension: the §3 virtual-player reduction for m >> n."""
    run_and_report(benchmark, "X8")
