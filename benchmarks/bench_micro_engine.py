"""Micro-benchmarks: the distributed engine's overhead vs the fast simulation.

The lockstep engine exists for fidelity, not speed; these benchmarks
price the difference so regressions in either path are visible.
"""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.zero_radius import PrimitiveSpace, zero_radius
from repro.engine import run_zero_radius_engine
from repro.workloads.planted import planted_instance


@pytest.fixture(scope="module")
def instance():
    return planted_instance(128, 128, 0.5, 0, rng=0)


def test_zero_radius_global_128(benchmark, instance):
    """Fast global Zero Radius at n = m = 128."""

    def run():
        oracle = ProbeOracle(instance)
        space = PrimitiveSpace(oracle, np.arange(128))
        return zero_radius(space, np.arange(128), 0.5, n_global=128, rng=1)

    out = benchmark(run)
    assert out.shape == (128, 128)


def test_zero_radius_engine_128(benchmark, instance):
    """Literal lockstep Zero Radius at n = m = 128 (coroutine players)."""

    def run():
        oracle = ProbeOracle(instance)
        return run_zero_radius_engine(oracle, np.arange(128), 0.5, rng=1)

    out, result = benchmark(run)
    assert out.shape == (128, 128)
    assert result.rounds >= result.probe_rounds
