"""Benchmark E7 — Theorem 6.1: RSelect — O(D)-close output with O(k^2 log n) probes.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_e7_rselect(benchmark):
    """Theorem 6.1: RSelect — O(D)-close output with O(k^2 log n) probes."""
    run_and_report(benchmark, "E7")
