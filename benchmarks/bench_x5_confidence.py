"""Benchmark X5 — Extension ablation: Small Radius confidence K — reliability vs linear cost.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_x5_confidence(benchmark):
    """Extension ablation: Small Radius confidence K — reliability vs linear cost."""
    run_and_report(benchmark, "X5")
