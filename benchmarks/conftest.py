"""Shared helpers for the benchmark suite.

Each ``bench_e*.py`` wraps one experiment from
:mod:`repro.experiments` in a pytest-benchmark target: the benchmark
measures wall time of the full experiment sweep, asserts its shape
checks, prints the rows (the paper has no tables of its own — these are
the evaluation tables, see DESIGN.md §2), and archives the rendered
report under ``benchmarks/reports/``.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_FULL=1`` for the full (slow) sweeps recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import obs
from repro.experiments import run_experiment

#: Full sweeps when REPRO_FULL=1, quick sweeps otherwise.
QUICK = os.environ.get("REPRO_FULL", "0") != "1"

#: Quick and full sweeps archive separately, so a quick run never
#: clobbers the full-sweep record EXPERIMENTS.md cites.
REPORT_DIR = Path(__file__).parent / "reports" / ("quick" if QUICK else "full")


def run_and_report(benchmark, experiment_id: str, seed: int = 1):
    """Benchmark one experiment, archive and print its table, assert checks.

    Every bench run records telemetry: the JSONL run log and a rendered
    per-phase cost profile land next to the experiment's report under
    ``benchmarks/reports/``, so probe-cost regressions are diffable
    artifacts, not folklore.
    """
    recorder = obs.Recorder(
        meta={"command": "bench", "experiment": experiment_id, "quick": QUICK, "seed": seed}
    )

    def run():
        with obs.recording(recorder):
            return run_experiment(experiment_id, quick=QUICK, rng=seed)

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    rendered = result.render()
    REPORT_DIR.mkdir(parents=True, exist_ok=True)
    (REPORT_DIR / f"{experiment_id}.txt").write_text(rendered + "\n")
    recorder.dump_jsonl(REPORT_DIR / f"{experiment_id}.telemetry.jsonl")
    (REPORT_DIR / f"{experiment_id}.profile.txt").write_text(recorder.render() + "\n")
    print("\n" + rendered)
    assert result.passed, f"{experiment_id} shape checks failed:\n{rendered}"
    return result


def archive_text(name: str, text: str) -> Path:
    """Archive a free-form benchmark report under ``benchmarks/reports/``.

    For benches that are not experiment sweeps (micro-benchmarks,
    before/after comparisons): same quick/full split, same diffable-
    artifact convention as :func:`run_and_report`.
    """
    REPORT_DIR.mkdir(parents=True, exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text.rstrip("\n") + "\n")
    return path


@pytest.fixture
def text_archiver():
    """Fixture form of :func:`archive_text`."""
    return archive_text


@pytest.fixture
def experiment_runner(benchmark):
    """Fixture form of :func:`run_and_report`."""

    def _run(experiment_id: str, seed: int = 1):
        return run_and_report(benchmark, experiment_id, seed)

    return _run
