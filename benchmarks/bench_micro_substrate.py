"""Micro-benchmarks: probe-oracle and algorithm-kernel throughput.

The second half of this file is the packed-vs-dense substrate A/B: every
kernel the bit-packed substrate replaced is timed against its dense seed
implementation on the same inputs.  ``python benchmarks/bench_micro_substrate.py``
re-times the whole table and writes the machine-readable record to
``BENCH_substrate.json`` at the repo root (kernel →
``{size, ns, bytes_moved, speedup_vs_seed}``); the pytest targets assert
the acceptance floors and archive the rendered table under
``benchmarks/reports/``.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.billboard.board import Billboard
from repro.billboard.oracle import ProbeOracle
from repro.billboard.trace import ProbeTrace
from repro.core.coalesce import coalesce
from repro.core.rselect import rselect
from repro.core.select import select
from repro.core.zero_radius import PrimitiveSpace, zero_radius
from repro.metrics.bitpack import BitMatrix, dense_substrate, packed_width
from repro.metrics.hamming import hamming_many, hamming_to_each, pairwise_hamming
from repro.utils.rowset import popular_rows, popular_rows_packed
from repro.workloads.planted import planted_instance


@pytest.fixture()
def oracle():
    rng = np.random.default_rng(0)
    return ProbeOracle(rng.integers(0, 2, (1024, 1024), dtype=np.int8))


def test_probe_scalar_throughput(benchmark, oracle):
    """Scalar probe path (Select's per-coordinate cost)."""

    def many():
        for j in range(256):
            oracle.probe(0, j)

    benchmark(many)


def test_probe_many_batch(benchmark, oracle):
    """Vectorized batch probing (Zero Radius leaves)."""
    players = np.repeat(np.arange(256), 64)
    objects = np.tile(np.arange(64), 256)
    benchmark(oracle.probe_many, players, objects)


def test_select_kernel(benchmark):
    """One Select over 8 candidates, bound 8, 512 coords."""
    rng = np.random.default_rng(1)
    hidden = rng.integers(0, 2, 512, dtype=np.int8)
    cands = rng.integers(0, 2, (8, 512), dtype=np.int8)
    cands[3] = hidden

    def run():
        return select(cands, lambda j: int(hidden[j]), 8)

    out = benchmark(run)
    assert out.index == 3


def test_rselect_kernel(benchmark):
    """One RSelect over 8 candidates, 512 coords, n=1024 confidence."""
    rng = np.random.default_rng(2)
    hidden = rng.integers(0, 2, 512, dtype=np.int8)
    cands = rng.integers(0, 2, (8, 512), dtype=np.int8)
    cands[0] = hidden

    def run():
        return rselect(cands, lambda j: int(hidden[j]), 1024, rng=3)

    out = benchmark(run)
    assert out.index == 0


def test_coalesce_kernel(benchmark):
    """Coalesce over 128 posted vectors of width 256."""
    rng = np.random.default_rng(4)
    center = rng.integers(0, 2, 256, dtype=np.int8)
    V = np.tile(center, (128, 1))
    flips = rng.random((128, 256)) < 0.02
    V = np.bitwise_xor(V, flips.astype(np.int8))
    out = benchmark(coalesce, V, 16, 0.5)
    assert out.size >= 1


def _filled_trace(n_events: int, n_players: int = 1024) -> ProbeTrace:
    rng = np.random.default_rng(6)
    trace = ProbeTrace()
    players = rng.integers(0, n_players, n_events).astype(np.intp)
    objects = rng.integers(0, n_players, n_events).astype(np.intp)
    values = rng.integers(0, 2, n_events).astype(np.int8)
    charged = np.ones(n_events, dtype=bool)
    for i in range(0, n_events, 512):
        trace.record_batch(players[i : i + 512], objects[i : i + 512], values[i : i + 512], charged[i : i + 512])
    return trace


def test_trace_record_batches(benchmark):
    """Appending 200k events in 512-probe batches (oracle-side cost)."""
    rng = np.random.default_rng(7)
    players = rng.integers(0, 1024, 200_000).astype(np.intp)
    objects = rng.integers(0, 1024, 200_000).astype(np.intp)
    values = rng.integers(0, 2, 200_000).astype(np.int8)
    charged = np.ones(200_000, dtype=bool)

    def record():
        trace = ProbeTrace()
        for i in range(0, 200_000, 512):
            trace.record_batch(players[i : i + 512], objects[i : i + 512], values[i : i + 512], charged[i : i + 512])
        return trace

    out = benchmark(record)
    assert len(out) == 200_000


def test_trace_charged_counts(benchmark):
    """Per-player attribution over a 200k-event trace (np.bincount path)."""
    trace = _filled_trace(200_000)
    counts = benchmark(trace.charged_counts, 1024)
    assert int(counts.sum()) == 200_000


def test_trace_events_for_player(benchmark):
    """Single-player slice of a 200k-event trace (mask path)."""
    trace = _filled_trace(200_000)
    events = benchmark(trace.events_for_player, 3)
    assert all(e.player == 3 for e in events)


def test_zero_radius_end_to_end_512(benchmark):
    """Full Zero Radius at n = m = 512 (the E1 workhorse)."""
    inst = planted_instance(512, 512, 0.5, 0, rng=5)

    def run():
        oracle = ProbeOracle(inst)
        space = PrimitiveSpace(oracle, np.arange(512))
        return zero_radius(space, np.arange(512), 0.5, n_global=512, rng=6)

    out = benchmark(run)
    assert out.shape == (512, 512)


# ---------------------------------------------------------------------------
# packed-vs-dense substrate A/B
#
# "dense" is the seed implementation each kernel replaced; "packed" is
# the substrate-native path on the same logical input.  Both sides are
# timed best-of-N on prebuilt inputs (the packed side holds the matrix
# already packed — that is the substrate's steady state; packing cost is
# paid once at construction and measured separately by the oracle A/B).
# ---------------------------------------------------------------------------

AB_N = AB_M = 2048
AB_PROBES = 200_000
AB_CHANNELS = 512
_AB_ROUNDS = 5


def _best_ns(fn, rounds: int = _AB_ROUNDS) -> int:
    fn()  # warm caches / lazy word views outside the timed region
    best = None
    for _ in range(rounds):
        t0 = time.perf_counter_ns()
        fn()
        dt = time.perf_counter_ns() - t0
        best = dt if best is None or dt < best else best
    return int(best)


def _ab_matrix(seed: int = 8) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, (AB_N, AB_M), dtype=np.int8)


def _vote_board(m: int, channels: int, seed: int = 9) -> Billboard:
    """A billboard holding *channels* single-row 0/1 vote posts."""
    rng = np.random.default_rng(seed)
    board = Billboard(channels, m)
    base = rng.integers(0, 2, m, dtype=np.int8)
    for i in range(channels):
        row = base.copy()
        row[rng.random(m) < 0.05] ^= 1
        board.post_vectors(f"ch{i}", row[None, :])
    return board


def substrate_kernels() -> dict[str, dict]:
    """The A/B table: kernel → size, nominal bytes moved, dense/packed fns.

    ``bytes_moved`` is the nominal read traffic of one packed-path call
    (the quantity the substrate shrinks 8×); ``dense_fn`` is the seed
    implementation, ``packed_fn`` the substrate-native path.
    """
    dense = _ab_matrix()
    bm = BitMatrix(dense)
    v = dense[0].copy()
    shuffled = dense[::-1].copy()
    bm_shuffled = BitMatrix(shuffled)
    n, m = dense.shape
    pw = packed_width(m)

    rng = np.random.default_rng(10)
    players = rng.integers(0, n, AB_PROBES).astype(np.intp)
    objects = rng.integers(0, m, AB_PROBES).astype(np.intp)
    packed_oracle = ProbeOracle(dense)
    with dense_substrate():
        dense_oracle = ProbeOracle(dense)

    packed_board = _vote_board(AB_M, AB_CHANNELS)
    with dense_substrate():
        dense_board = _vote_board(AB_M, AB_CHANNELS)
    names = [f"ch{i}" for i in range(AB_CHANNELS)]
    min_votes = AB_CHANNELS // 4

    def packed_vote():
        gathered = packed_board.read_first_rows_packed(names)
        assert gathered is not None
        return popular_rows_packed(gathered[0], gathered[1], min_votes)

    def dense_vote():
        return popular_rows(dense_board.read_first_rows(names), min_votes)

    return {
        "hamming_to_each": {
            "size": f"{n}x{m}",
            "bytes_moved": n * pw + pw,
            "dense_fn": lambda: hamming_to_each(v, dense),
            "packed_fn": lambda: hamming_to_each(v, bm),
        },
        "hamming_many": {
            "size": f"{n}x{m}",
            "bytes_moved": 2 * n * pw,
            "dense_fn": lambda: hamming_many(dense, shuffled),
            "packed_fn": lambda: hamming_many(bm, bm_shuffled),
        },
        "diameter": {
            "size": f"{n}x{m}",
            "bytes_moved": n * n * pw,
            "dense_fn": lambda: int(pairwise_hamming(dense).max()),
            "packed_fn": bm.diameter,
        },
        "oracle_probe_many": {
            "size": f"{AB_PROBES} probes of {n}x{m}",
            "bytes_moved": AB_PROBES,
            "dense_fn": lambda: dense_oracle.probe_many(players, objects),
            "packed_fn": lambda: packed_oracle.probe_many(players, objects),
        },
        "billboard_vote_gather": {
            "size": f"{AB_CHANNELS} channels of width {AB_M}",
            "bytes_moved": AB_CHANNELS * pw,
            "dense_fn": dense_vote,
            "packed_fn": packed_vote,
        },
    }


def _time_table(kernels: dict[str, dict]) -> dict[str, dict]:
    table: dict[str, dict] = {}
    for name, spec in kernels.items():
        dense_ns = _best_ns(spec["dense_fn"])
        packed_ns = _best_ns(spec["packed_fn"])
        table[name] = {
            "size": spec["size"],
            "ns": packed_ns,
            "bytes_moved": spec["bytes_moved"],
            "speedup_vs_seed": round(dense_ns / packed_ns, 2),
            "seed_ns": dense_ns,
        }
    return table


def _render_table(table: dict[str, dict]) -> str:
    lines = [
        "packed-vs-dense substrate A/B (best of "
        f"{_AB_ROUNDS}; 'seed' is the dense implementation each kernel replaced)",
        "",
        f"{'kernel':<24} {'size':<28} {'seed':>10} {'packed':>10} {'speedup':>8}",
    ]
    for name, row in table.items():
        lines.append(
            f"{name:<24} {row['size']:<28} "
            f"{row['seed_ns'] / 1e6:>8.2f}ms {row['ns'] / 1e6:>8.2f}ms "
            f"{row['speedup_vs_seed']:>7.2f}x"
        )
    return "\n".join(lines)


def test_substrate_packed_vs_dense_ab(benchmark, text_archiver):
    """The substrate A/B with its acceptance floor.

    ``hamming_to_each`` at 2048×2048 — the flagship one-vs-all kernel —
    must beat its dense seed ≥ 2×; the rest of the table is recorded
    (and written to ``BENCH_substrate.json`` by the ``__main__`` form)
    without a hard floor.
    """
    kernels = substrate_kernels()
    table = benchmark.pedantic(_time_table, args=(kernels,), iterations=1, rounds=1)
    report = _render_table(table)
    path = text_archiver("substrate_ab", report)
    print("\n" + report + f"\n[archived: {path}]")
    for name, row in table.items():
        benchmark.extra_info[name] = row["speedup_vs_seed"]
    assert table["hamming_to_each"]["speedup_vs_seed"] >= 2.0, report


def main(argv: "list[str] | None" = None) -> None:
    """Re-time the A/B table and write ``BENCH_substrate.json``.

    ``--out`` lets CI write the fresh record to a scratch path for
    ``benchmarks/check_regression.py`` instead of overwriting the
    committed baseline.
    """
    import argparse

    default_out = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"
    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--out", type=Path, default=default_out, metavar="PATH")
    args = parser.parse_args(argv)

    from repro.metrics.kernels import kernel_backend

    table = _time_table(substrate_kernels())
    print(_render_table(table))
    out = {
        "bench": "packed-vs-dense substrate kernels",
        "harness": "benchmarks/bench_micro_substrate.py (best of "
        f"{_AB_ROUNDS}, prebuilt inputs)",
        "seed_semantics": "dense implementation each kernel replaced",
        # Honesty metadata: which repro.metrics.kernels backend produced
        # these timings.  check_regression.py only compares like-for-like
        # backends (a compiled baseline vs a numpy fresh run measures the
        # backend switch, not a regression).
        "kernel_backend": kernel_backend(),
        "kernels": {
            name: {k: row[k] for k in ("size", "ns", "bytes_moved", "speedup_vs_seed")}
            for name, row in table.items()
        },
    }
    args.out.write_text(json.dumps(out, indent=2) + "\n")
    print(f"\n[written: {args.out}]")


if __name__ == "__main__":
    main()
