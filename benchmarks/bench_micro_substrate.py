"""Micro-benchmarks: probe-oracle and algorithm-kernel throughput."""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.billboard.trace import ProbeTrace
from repro.core.coalesce import coalesce
from repro.core.rselect import rselect
from repro.core.select import select
from repro.core.zero_radius import PrimitiveSpace, zero_radius
from repro.workloads.planted import planted_instance


@pytest.fixture()
def oracle():
    rng = np.random.default_rng(0)
    return ProbeOracle(rng.integers(0, 2, (1024, 1024), dtype=np.int8))


def test_probe_scalar_throughput(benchmark, oracle):
    """Scalar probe path (Select's per-coordinate cost)."""

    def many():
        for j in range(256):
            oracle.probe(0, j)

    benchmark(many)


def test_probe_many_batch(benchmark, oracle):
    """Vectorized batch probing (Zero Radius leaves)."""
    players = np.repeat(np.arange(256), 64)
    objects = np.tile(np.arange(64), 256)
    benchmark(oracle.probe_many, players, objects)


def test_select_kernel(benchmark):
    """One Select over 8 candidates, bound 8, 512 coords."""
    rng = np.random.default_rng(1)
    hidden = rng.integers(0, 2, 512, dtype=np.int8)
    cands = rng.integers(0, 2, (8, 512), dtype=np.int8)
    cands[3] = hidden

    def run():
        return select(cands, lambda j: int(hidden[j]), 8)

    out = benchmark(run)
    assert out.index == 3


def test_rselect_kernel(benchmark):
    """One RSelect over 8 candidates, 512 coords, n=1024 confidence."""
    rng = np.random.default_rng(2)
    hidden = rng.integers(0, 2, 512, dtype=np.int8)
    cands = rng.integers(0, 2, (8, 512), dtype=np.int8)
    cands[0] = hidden

    def run():
        return rselect(cands, lambda j: int(hidden[j]), 1024, rng=3)

    out = benchmark(run)
    assert out.index == 0


def test_coalesce_kernel(benchmark):
    """Coalesce over 128 posted vectors of width 256."""
    rng = np.random.default_rng(4)
    center = rng.integers(0, 2, 256, dtype=np.int8)
    V = np.tile(center, (128, 1))
    flips = rng.random((128, 256)) < 0.02
    V = np.bitwise_xor(V, flips.astype(np.int8))
    out = benchmark(coalesce, V, 16, 0.5)
    assert out.size >= 1


def _filled_trace(n_events: int, n_players: int = 1024) -> ProbeTrace:
    rng = np.random.default_rng(6)
    trace = ProbeTrace()
    players = rng.integers(0, n_players, n_events).astype(np.intp)
    objects = rng.integers(0, n_players, n_events).astype(np.intp)
    values = rng.integers(0, 2, n_events).astype(np.int8)
    charged = np.ones(n_events, dtype=bool)
    for i in range(0, n_events, 512):
        trace.record_batch(players[i : i + 512], objects[i : i + 512], values[i : i + 512], charged[i : i + 512])
    return trace


def test_trace_record_batches(benchmark):
    """Appending 200k events in 512-probe batches (oracle-side cost)."""
    rng = np.random.default_rng(7)
    players = rng.integers(0, 1024, 200_000).astype(np.intp)
    objects = rng.integers(0, 1024, 200_000).astype(np.intp)
    values = rng.integers(0, 2, 200_000).astype(np.int8)
    charged = np.ones(200_000, dtype=bool)

    def record():
        trace = ProbeTrace()
        for i in range(0, 200_000, 512):
            trace.record_batch(players[i : i + 512], objects[i : i + 512], values[i : i + 512], charged[i : i + 512])
        return trace

    out = benchmark(record)
    assert len(out) == 200_000


def test_trace_charged_counts(benchmark):
    """Per-player attribution over a 200k-event trace (np.bincount path)."""
    trace = _filled_trace(200_000)
    counts = benchmark(trace.charged_counts, 1024)
    assert int(counts.sum()) == 200_000


def test_trace_events_for_player(benchmark):
    """Single-player slice of a 200k-event trace (mask path)."""
    trace = _filled_trace(200_000)
    events = benchmark(trace.events_for_player, 3)
    assert all(e.player == 3 for e in events)


def test_zero_radius_end_to_end_512(benchmark):
    """Full Zero Radius at n = m = 512 (the E1 workhorse)."""
    inst = planted_instance(512, 512, 0.5, 0, rng=5)

    def run():
        oracle = ProbeOracle(inst)
        space = PrimitiveSpace(oracle, np.arange(512))
        return zero_radius(space, np.arange(512), 0.5, n_global=512, rng=6)

    out = benchmark(run)
    assert out.shape == (512, 512)
