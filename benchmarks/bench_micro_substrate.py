"""Micro-benchmarks: probe-oracle and algorithm-kernel throughput."""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.coalesce import coalesce
from repro.core.rselect import rselect
from repro.core.select import select
from repro.core.zero_radius import PrimitiveSpace, zero_radius
from repro.workloads.planted import planted_instance


@pytest.fixture()
def oracle():
    rng = np.random.default_rng(0)
    return ProbeOracle(rng.integers(0, 2, (1024, 1024), dtype=np.int8))


def test_probe_scalar_throughput(benchmark, oracle):
    """Scalar probe path (Select's per-coordinate cost)."""

    def many():
        for j in range(256):
            oracle.probe(0, j)

    benchmark(many)


def test_probe_many_batch(benchmark, oracle):
    """Vectorized batch probing (Zero Radius leaves)."""
    players = np.repeat(np.arange(256), 64)
    objects = np.tile(np.arange(64), 256)
    benchmark(oracle.probe_many, players, objects)


def test_select_kernel(benchmark):
    """One Select over 8 candidates, bound 8, 512 coords."""
    rng = np.random.default_rng(1)
    hidden = rng.integers(0, 2, 512, dtype=np.int8)
    cands = rng.integers(0, 2, (8, 512), dtype=np.int8)
    cands[3] = hidden

    def run():
        return select(cands, lambda j: int(hidden[j]), 8)

    out = benchmark(run)
    assert out.index == 3


def test_rselect_kernel(benchmark):
    """One RSelect over 8 candidates, 512 coords, n=1024 confidence."""
    rng = np.random.default_rng(2)
    hidden = rng.integers(0, 2, 512, dtype=np.int8)
    cands = rng.integers(0, 2, (8, 512), dtype=np.int8)
    cands[0] = hidden

    def run():
        return rselect(cands, lambda j: int(hidden[j]), 1024, rng=3)

    out = benchmark(run)
    assert out.index == 0


def test_coalesce_kernel(benchmark):
    """Coalesce over 128 posted vectors of width 256."""
    rng = np.random.default_rng(4)
    center = rng.integers(0, 2, 256, dtype=np.int8)
    V = np.tile(center, (128, 1))
    flips = rng.random((128, 256)) < 0.02
    V = np.bitwise_xor(V, flips.astype(np.int8))
    out = benchmark(coalesce, V, 16, 0.5)
    assert out.size >= 1


def test_zero_radius_end_to_end_512(benchmark):
    """Full Zero Radius at n = m = 512 (the E1 workhorse)."""
    inst = planted_instance(512, 512, 0.5, 0, rng=5)

    def run():
        oracle = ProbeOracle(inst)
        space = PrimitiveSpace(oracle, np.arange(512))
        return zero_radius(space, np.arange(512), 0.5, n_global=512, rng=6)

    out = benchmark(run)
    assert out.shape == (512, 512)
