"""Benchmark E9 — Prose comparison: ours vs solo/majority/kNN/SVD at matched budget.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_e9_baselines(benchmark):
    """Prose comparison: ours vs solo/majority/kNN/SVD at matched budget."""
    run_and_report(benchmark, "E9")
