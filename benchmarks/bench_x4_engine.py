"""Benchmark X4 — Extension: the literal lockstep engine matches the fast simulation bitwise.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_x4_engine(benchmark):
    """Extension: the literal lockstep engine matches the fast simulation bitwise."""
    run_and_report(benchmark, "X4")
