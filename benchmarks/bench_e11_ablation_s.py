"""Benchmark E11 — §4 ablation: the s = Θ(D^{3/2}) partition-count knee.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_e11_ablation_s(benchmark):
    """§4 ablation: the s = Θ(D^{3/2}) partition-count knee."""
    run_and_report(benchmark, "E11")
