"""Benchmark X3 — Extension (ref. [4]): billboard recommendations amortise good-object search.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_x3_good_object(benchmark):
    """Extension (ref. [4]): billboard recommendations amortise good-object search."""
    run_and_report(benchmark, "X3")
