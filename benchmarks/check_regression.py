"""Bench-regression gate: fresh ``BENCH_*.json`` vs committed baselines.

CI re-runs the benchmark harnesses (``bench_micro_substrate.py --out``,
``bench_serve.py --out``) into a scratch directory and this script
compares every throughput-bearing metric against the baselines committed
at the repo root.  A metric regresses when its throughput drops below
``threshold`` times the baseline (default 0.75, the ``>25% regression``
gate):

* keys named ``ns`` are latencies — lower is better, so the fresh value
  fails when ``baseline_ns / fresh_ns < threshold``;
* keys ending in ``_per_s`` are throughputs — higher is better, so the
  fresh value fails when ``fresh / baseline < threshold``.

Everything else in the records (sizes, bytes moved, speedup ratios,
prose) is descriptive and not gated — speedups compare two timings from
the *same* run and say nothing about machine-to-machine drift, while the
gated metrics compare the same timing across runs.  A baseline metric
missing from the fresh record is a hard failure: silently dropping a
kernel from a bench must not read as "no regression".

Three comparisons are *skipped* (loudly, never silently) because they
cannot produce an honest regression signal:

* a record whose ``workers`` exceeds the checking host's CPU count —
  the host physically cannot express that parallelism, so its number
  measures oversubscription, not the kernel;
* a metric whose ``size`` field differs between baseline and fresh —
  different workload scales are different benchmarks (e.g. a committed
  full-size baseline checked against a CI quick run);
* a metric whose ``kernel_backend`` differs between baseline and fresh
  — a compiled-backend baseline checked on a host without a C
  compiler (or under ``REPRO_FORCE_PY_KERNELS=1``) measures the
  backend switch, not a regression; only like-for-like backends gate.

Context fields (``workers``, ``size``, ``kernel_backend``) are
inherited downward: a record-level ``kernel_backend`` covers every
nested metric unless a deeper dict overrides it.

Usage::

    python benchmarks/check_regression.py --fresh-dir /tmp/bench \
        [--baseline-dir .] [--threshold 0.75]

Exit status: 0 all gated metrics pass, 1 on regression or a missing
metric, 2 on usage errors (no baselines found, unreadable JSON).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``dotted.path -> (kind, value, context)`` where context carries the
#: record's descriptive ``workers`` / ``size`` / ``kernel_backend``
#: fields (nearest enclosing dict wins).
Metrics = dict[str, tuple[str, float, dict]]

#: Descriptive fields the skip rules consult, inherited down the record
#: tree so a top-level honesty stamp covers every nested metric.
_CONTEXT_KEYS = ("workers", "size", "kernel_backend")


def gated_metrics(record: object, prefix: str = "", inherited: dict | None = None) -> Metrics:
    """Flatten a bench record to ``dotted.path -> (kind, value, context)``.

    Only the gated keys survive: ``kind`` is ``"ns"`` (lower is better)
    or ``"per_s"`` (higher is better).  ``context`` holds the
    ``workers`` / ``size`` / ``kernel_backend`` fields the skip rules
    consult — inherited from enclosing dicts, with the nearest
    enclosing value winning.
    """
    found: Metrics = {}
    if isinstance(record, dict):
        context = dict(inherited or {})
        context.update(
            {key: record[key] for key in _CONTEXT_KEYS if key in record}
        )
        for key, value in record.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if key == "ns":
                    found[path] = ("ns", float(value), context)
                elif key.endswith("_per_s"):
                    found[path] = ("per_s", float(value), context)
            else:
                found.update(gated_metrics(value, path, context))
    return found


def compare(
    name: str, baseline: dict, fresh: dict, threshold: float
) -> tuple[list[str], bool]:
    """Compare one bench pair; returns (report lines, ok)."""
    lines: list[str] = []
    ok = True
    host_cpus = os.cpu_count() or 1
    base_metrics = gated_metrics(baseline)
    fresh_metrics = gated_metrics(fresh)
    if not base_metrics:
        return [f"{name}: baseline has no gated metrics (ns / *_per_s)"], False
    for path, (kind, base_value, base_ctx) in sorted(base_metrics.items()):
        workers = int(base_ctx.get("workers", 1))
        if workers > host_cpus:
            lines.append(
                f"skip {name}:{path} (workers={workers} > {host_cpus} host cpu(s): "
                "parallel speedup not expressible here)"
            )
            continue
        if path not in fresh_metrics:
            lines.append(f"FAIL {name}:{path} missing from fresh record")
            ok = False
            continue
        _, fresh_value, fresh_ctx = fresh_metrics[path]
        base_size, fresh_size = base_ctx.get("size"), fresh_ctx.get("size")
        if base_size is not None and fresh_size is not None and base_size != fresh_size:
            lines.append(
                f"skip {name}:{path} (size mismatch: baseline {base_size!r} "
                f"vs fresh {fresh_size!r}: different workloads are not comparable)"
            )
            continue
        base_backend = base_ctx.get("kernel_backend")
        fresh_backend = fresh_ctx.get("kernel_backend")
        if base_backend != fresh_backend:
            lines.append(
                f"skip {name}:{path} (kernel_backend switch: baseline "
                f"{base_backend!r} vs fresh {fresh_backend!r}: only "
                "like-for-like backends are comparable)"
            )
            continue
        # Normalise to a throughput ratio: >= 1.0 means at least as fast.
        if kind == "ns":
            ratio = base_value / fresh_value if fresh_value else float("inf")
        else:
            ratio = fresh_value / base_value if base_value else float("inf")
        verdict = "ok  " if ratio >= threshold else "FAIL"
        ok = ok and ratio >= threshold
        lines.append(
            f"{verdict} {name}:{path} ({kind}) "
            f"baseline={base_value:,.1f} fresh={fresh_value:,.1f} "
            f"throughput x{ratio:.2f} (floor x{threshold:.2f})"
        )
    return lines, ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate fresh BENCH_*.json records against committed baselines."
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        required=True,
        metavar="DIR",
        help="directory holding freshly produced BENCH_*.json records",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=REPO_ROOT,
        metavar="DIR",
        help="directory holding the committed baselines (default: repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.75,
        help="throughput floor as a fraction of baseline (default 0.75)",
    )
    args = parser.parse_args(argv)

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no BENCH_*.json baselines under {args.baseline_dir}", file=sys.stderr)
        return 2

    all_ok = True
    for baseline_path in baselines:
        fresh_path = args.fresh_dir / baseline_path.name
        if not fresh_path.exists():
            print(f"FAIL {baseline_path.name}: no fresh record at {fresh_path}")
            all_ok = False
            continue
        try:
            baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
            fresh = json.loads(fresh_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"unreadable bench record: {exc}", file=sys.stderr)
            return 2
        lines, ok = compare(baseline_path.name, baseline, fresh, args.threshold)
        print("\n".join(lines))
        all_ok = all_ok and ok
    print("bench-regression gate:", "pass" if all_ok else "FAIL")
    return 0 if all_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
