"""Benchmark E10 — §6: unknown-D doubling — log-factor cost, constant-factor quality.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_e10_unknown_d(benchmark):
    """§6: unknown-D doubling — log-factor cost, constant-factor quality."""
    run_and_report(benchmark, "E10")
