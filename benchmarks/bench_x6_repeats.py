"""Benchmark X6 — Extension ablation: paper cost model vs smart-client probe reuse.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_x6_repeats(benchmark):
    """Extension ablation: paper cost model vs smart-client probe reuse."""
    run_and_report(benchmark, "X6")
