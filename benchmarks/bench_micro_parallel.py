"""Before/after benchmark of the shared-memory trial sweep.

Measures the PR's two performance levers on the canonical sweep shape —
16 Small Radius trials over one planted ``n = m = 2048`` instance:

* **before** — the pre-PR path: ``run_trials`` handed the dense
  preference matrix per trial, and Small Radius deduplicated candidate
  sets through ``np.unique(axis=0)`` (restored here via
  ``rowset.legacy_unique()``).
* **after** — trials go through :func:`repro.experiments.sweep_trials`:
  the instance is published once to shared memory
  (:class:`~repro.parallel.SharedInstanceStore`) and workers attach via
  the handle, with the order-preserving byte-key ``rowset`` fast path
  active.

Both modes must produce identical results (asserted on output digests
and per-trial probe totals — the batched/fast paths are
observation-equivalent, not approximations).  The acceptance floor is a
**3×** wall-clock speedup; the measured report is archived under
``benchmarks/reports/`` by :func:`conftest.archive_text`.
"""

from __future__ import annotations

import hashlib
import time

from repro.api import (
    ProbeOracle,
    SharedInstanceStore,
    derive_seeds,
    find_preferences,
    make_instance,
    run_trials,
    sweep_trials,
)
from repro.utils import rowset

N = M = 2048
ALPHA = 0.5
D = 2
TRIALS = 16
INSTANCE_SEED = 13
BASE_SEED = 17
MIN_SPEEDUP = 3.0


def _trial(prefs, seed):
    oracle = ProbeOracle(prefs)
    result = find_preferences(oracle, ALPHA, D, rng=seed)
    digest = hashlib.sha256(result.outputs.tobytes()).hexdigest()[:16]
    return digest, result.total_probes


def trial_before(prefs, seed):
    """Pre-PR trial: dense matrix in the args, np.unique dedup."""
    with rowset.legacy_unique():
        return _trial(prefs, seed)


def trial_after(handle, seed):
    """Post-PR trial: attach via the shared handle, fast rowset path."""
    return _trial(handle.prefs(), seed)


def test_sweep_before_after(benchmark, text_archiver):
    instance = make_instance("planted", n=N, m=M, alpha=ALPHA, D=D, rng=INSTANCE_SEED)
    seeds = derive_seeds(BASE_SEED, TRIALS)

    t0 = time.perf_counter()
    before = run_trials(trial_before, [(instance.prefs, s) for s in seeds])
    t_before = time.perf_counter() - t0

    after_times: list[float] = []

    def run_after():
        t = time.perf_counter()
        results = sweep_trials(trial_after, instance, seeds)
        after_times.append(time.perf_counter() - t)
        return results

    after = benchmark.pedantic(run_after, iterations=1, rounds=1)
    t_after = after_times[-1]

    assert after == before, "shared-memory fast path changed trial results"

    speedup = t_before / t_after
    lines = [
        f"parallel sweep micro-benchmark: {TRIALS} small_radius trials, "
        f"n=m={N}, alpha={ALPHA}, D={D}",
        f"instance seed {INSTANCE_SEED}, trial base seed {BASE_SEED}",
        "",
        f"before (dense args + np.unique dedup):      {t_before:8.2f} s "
        f"({t_before / TRIALS:.2f} s/trial)",
        f"after  (shared-memory handle + rowset keys): {t_after:8.2f} s "
        f"({t_after / TRIALS:.2f} s/trial)",
        f"speedup: {speedup:.2f}x (floor {MIN_SPEEDUP:.1f}x)",
        "",
        f"per-trial probe totals (identical in both modes): "
        f"{[probes for _, probes in after]}",
    ]
    report = "\n".join(lines)
    path = text_archiver("micro_parallel", report)
    print("\n" + report + f"\n[archived: {path}]")

    benchmark.extra_info["t_before_s"] = round(t_before, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= MIN_SPEEDUP, report
