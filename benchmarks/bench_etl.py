"""ETL pipeline benchmark: parse → ingest → read-back, plus the real-data panel.

Times every stage of the :mod:`repro.datasets` pipeline on a generated
planted-community ratings corpus (``synth-10k`` quick / ``synth-100k``
under ``REPRO_FULL=1`` — the registry's deterministic offline corpora):

* **parse** — streaming the raw CSV through ``iter_chunks`` alone
  (rows/s of the parser, no packing);
* **ingest** — the full scan + spill + pack + commit path into a packed
  store, with the tracemalloc peak recorded alongside (the
  bounded-memory claim, measured: the peak must sit far below the dense
  ``n × m`` matrix the pipeline promises never to allocate);
* **read** — streaming the committed shards back into a packed matrix.

On top of the stage timings the harness runs the
:func:`repro.datasets.evaluate.evaluate_dataset` panel — the paper's
select/rselect/anytime plus the knn/svd/majority/solo baselines at
matched budget — and records the measured-stretch table in the output
(descriptive, not gated: stretch is a quality number, not a throughput).

``python benchmarks/bench_etl.py [--out PATH]`` writes
``BENCH_etl.json`` at the repo root; ``benchmarks/check_regression.py``
gates the ``*_per_s`` keys against the committed baseline like every
other bench record.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
import tracemalloc
from pathlib import Path

from repro.datasets.evaluate import evaluate_dataset
from repro.datasets.formats import iter_chunks
from repro.datasets.ingest import ingest
from repro.datasets.registry import get
from repro.datasets.store import DatasetStore

#: Full size when REPRO_FULL=1, CI-friendly size otherwise.
QUICK = os.environ.get("REPRO_FULL", "0") != "1"

DATASET = "synth-10k" if QUICK else "synth-100k"
SHARD_ROWS = 64 if QUICK else 256
CHUNK_ROWS = 4096 if QUICK else 8192
SEED = 0
#: Best-of rounds for the millisecond-scale stages (parse, read-back).
ROUNDS = 5 if QUICK else 2


def main(argv: list[str] | None = None) -> None:
    """Time the ETL stages and write ``BENCH_etl.json``.

    ``--out`` lets CI write the fresh record to a scratch path and gate
    it against the committed baseline without overwriting it.
    """
    default_out = Path(__file__).resolve().parent.parent / "BENCH_etl.json"
    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--out", type=Path, default=default_out, metavar="PATH")
    args = parser.parse_args(argv)

    spec = get(DATASET)
    with tempfile.TemporaryDirectory() as scratch_str:
        scratch = Path(scratch_str)
        source = spec.materialize(scratch / "raw")

        # Short stages run several times with the fastest kept — on the
        # quick corpus a single pass is milliseconds, within scheduler
        # noise of the 0.75 regression floor.
        parse_s = float("inf")
        parsed_rows = 0
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            _, chunks = iter_chunks(source, chunk_rows=CHUNK_ROWS)
            parsed_rows = sum(len(chunk) for chunk in chunks)
            parse_s = min(parse_s, time.perf_counter() - t0)

        tracemalloc.start()
        tracemalloc.reset_peak()
        t0 = time.perf_counter()
        result = ingest(
            source,
            scratch / "store",
            threshold=spec.threshold,
            missing="majority",
            shard_rows=SHARD_ROWS,
            chunk_rows=CHUNK_ROWS,
        )
        ingest_s = time.perf_counter() - t0
        _, ingest_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        dense_bytes = result.n * result.m

        store = DatasetStore.open(scratch / "store")
        read_s = float("inf")
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            bm = store.bitmatrix()
            read_s = min(read_s, time.perf_counter() - t0)
        assert bm.shape == (result.n, result.m)

        t0 = time.perf_counter()
        evaluation = evaluate_dataset(store, rng=SEED)
        evaluate_s = time.perf_counter() - t0

    size = f"{DATASET}: {parsed_rows} ratings, {result.n}x{result.m}"
    out = {
        "bench": "datasets ETL: streaming parse -> packed ingest -> read-back",
        "harness": (
            f"benchmarks/bench_etl.py, corpus {DATASET}, shard_rows={SHARD_ROWS}, "
            f"chunk_rows={CHUNK_ROWS}, missing=majority, evaluate seed {SEED}"
        ),
        "kernels": {
            "etl_parse": {
                "size": size,
                "wall_s": round(parse_s, 3),
                "rows_per_s": round(parsed_rows / parse_s, 1),
            },
            "etl_ingest": {
                "size": size,
                "wall_s": round(ingest_s, 3),
                "rows_per_s": round(result.rows_read / ingest_s, 1),
                "peak_tracemalloc_bytes": ingest_peak,
                "dense_matrix_bytes": dense_bytes,
                "peak_vs_dense": round(ingest_peak / dense_bytes, 3),
            },
            "etl_read": {
                "size": size,
                "wall_s": round(read_s, 3),
                "rows_per_s": round(result.n / read_s, 1),
            },
        },
        "evaluation": {
            "size": size,
            "wall_s": round(evaluate_s, 3),
            "alpha": round(evaluation.alpha, 4),
            "diameter": evaluation.diameter,
            "community_size": evaluation.community_size,
            "stretch": {s.algorithm: round(s.stretch, 3) for s in evaluation.scores},
            "rounds": {s.algorithm: s.rounds for s in evaluation.scores},
        },
    }
    # Only meaningful at scale: on the quick corpus the dense matrix is
    # ~48 KB while the (constant) chunk/spill buffers alone are larger.
    # The full corpus makes the claim sharp; the ≥100k tracemalloc test
    # in tests/test_datasets.py pins it on every CI run regardless.
    if not QUICK:
        assert ingest_peak < dense_bytes, (
            f"ETL peak {ingest_peak} bytes >= dense n*m {dense_bytes} — "
            "the pipeline materialised the dense matrix"
        )
    args.out.write_text(json.dumps(out, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(out, indent=2))


if __name__ == "__main__":
    main()
