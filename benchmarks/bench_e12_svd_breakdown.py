"""Benchmark E12 — §2: SVD baseline breaks past its assumed type count; ours doesn't.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_e12_svd_breakdown(benchmark):
    """§2: SVD baseline breaks past its assumed type count; ours doesn't."""
    run_and_report(benchmark, "E12")
