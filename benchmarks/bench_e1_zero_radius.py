"""Benchmark E1 — Theorem 3.1: Zero Radius — exact recovery in O(log n / alpha) rounds.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_e1_zero_radius(benchmark):
    """Theorem 3.1: Zero Radius — exact recovery in O(log n / alpha) rounds."""
    run_and_report(benchmark, "E1")
