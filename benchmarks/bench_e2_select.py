"""Benchmark E2 — Theorem 3.2: Select — exact Choose-Closest within k(D+1) probes.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_e2_select(benchmark):
    """Theorem 3.2: Select — exact Choose-Closest within k(D+1) probes."""
    run_and_report(benchmark, "E2")
