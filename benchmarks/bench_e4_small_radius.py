"""Benchmark E4 — Theorem 4.4: Small Radius — error <= 5D, cost O(K D^{3/2}(D+log n)/alpha).

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_e4_small_radius(benchmark):
    """Theorem 4.4: Small Radius — error <= 5D, cost O(K D^{3/2}(D+log n)/alpha)."""
    run_and_report(benchmark, "E4")
