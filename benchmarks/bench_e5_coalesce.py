"""Benchmark E5 — Theorem 5.3: Coalesce — <= 1/alpha outputs, unique 2D-close representative.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_e5_coalesce(benchmark):
    """Theorem 5.3: Coalesce — <= 1/alpha outputs, unique 2D-close representative."""
    run_and_report(benchmark, "E5")
