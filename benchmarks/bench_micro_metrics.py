"""Micro-benchmarks: distance-metric kernels.

The profiling-first workflow (see the HPC guidance) needs stable
reference timings for the hot kernels; these also guard against
accidental de-vectorisation regressions.
"""

import numpy as np
import pytest

from repro.metrics.bitpack import BitMatrix
from repro.metrics.hamming import diameter, hamming_to_each, pairwise_hamming
from repro.metrics.tilde import tilde_pairwise


@pytest.fixture(scope="module")
def dense_matrix():
    rng = np.random.default_rng(0)
    return rng.integers(0, 2, (512, 512), dtype=np.int8)


@pytest.fixture(scope="module")
def wildcard_matrix():
    rng = np.random.default_rng(1)
    m = rng.integers(0, 2, (256, 512), dtype=np.int8)
    m[rng.random(m.shape) < 0.1] = -1
    return m


def test_pairwise_hamming_dense(benchmark, dense_matrix):
    """All-pairs Hamming via two BLAS products (512x512)."""
    out = benchmark(pairwise_hamming, dense_matrix)
    assert out.shape == (512, 512)


def test_pairwise_hamming_bitpacked(benchmark, dense_matrix):
    """All-pairs Hamming via packed XOR popcount (512x512)."""
    bm = BitMatrix(dense_matrix)
    out = benchmark(bm.pairwise_hamming)
    assert out.shape == (512, 512)


def test_hamming_to_each(benchmark, dense_matrix):
    """One-vs-all distances (the Select/vote hot path)."""
    v = dense_matrix[0]
    out = benchmark(hamming_to_each, v, dense_matrix)
    assert out.shape == (512,)


def test_diameter_512(benchmark, dense_matrix):
    """Diameter of 512 rows (BLAS path)."""
    out = benchmark(diameter, dense_matrix)
    assert out > 0


def test_tilde_pairwise(benchmark, wildcard_matrix):
    """Wildcard-aware all-pairs d̃ (Coalesce's setup cost)."""
    out = benchmark(tilde_pairwise, wildcard_matrix)
    assert out.shape == (256, 256)


def test_bitmatrix_pack(benchmark, dense_matrix):
    """Packing cost (amortised over many distance queries)."""
    out = benchmark(BitMatrix, dense_matrix)
    assert out.shape == (512, 512)
