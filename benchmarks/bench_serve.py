"""A/B benchmark of the serving runtime's micro-batched probe routing.

Drives one closed-loop load-generation scenario on a planted
``n = m = 2048`` instance twice:

* **sequential** — the reference baseline: request-at-a-time serving
  (``window=1``, so every request flushes alone) with one scalar
  ``ProbeOracle.probe`` call per probe (``micro_batch=False``, the same
  path the library-wide ``sequential_probes()`` switch forces);
* **micro-batched** — the serving fast path: requests buffer inside the
  batching window and each sweep's probe wavefront goes to the oracle
  as a single ``probe_many`` call.

Both modes serve the same workload to the same bits (asserted on the
outputs digest and the total probe count — micro-batching is a
scheduling change with a pinned equivalence contract, not an
approximation).  Request *counts* differ between the modes — window=1
requests stall at billboard waits sooner, so each carries fewer
probes — which makes req/s misleading across modes; probes/s over the
identical total probe workload is the like-for-like throughput, and the
speedup is measured on it.  The acceptance floor is micro-batched
**beating** sequential; the measured report is archived under
``benchmarks/reports/`` via :func:`conftest.archive_text`.

On top of the A/B, the harness sweeps the **sharded topology** over
``workers ∈ {1, 2, 4, 8}`` with the micro-batched config held fixed:
``workers=1`` is the in-process runtime (the micro run itself), higher
counts partition the sessions across that many worker processes over
the shared packed oracle (:mod:`repro.serve.sharded`).  Every sweep
entry must serve the *same bits* (outputs digest and total probes are
asserted equal) — the sweep measures topology cost/benefit, never
correctness drift.  Each record carries ``workers`` and ``host_cpus``
so readers (and the regression gate) can judge whether a speedup was
physically possible: on a 1-CPU host the sharded entries measure pure
coordination overhead, and ``check_regression.py`` skips gating any
record whose worker count exceeds the checking host's cores.

``python benchmarks/bench_serve.py [--out PATH]`` re-times the A/B and
writes the machine-readable record to ``BENCH_serve.json`` at the repo
root (mirroring ``bench_micro_substrate.py`` → ``BENCH_substrate.json``);
``benchmarks/check_regression.py`` gates CI on the committed baselines.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

from repro.metrics.kernels import kernel_backend as _kernel_backend
from repro.serve import LoadgenConfig, LoadgenReport, run_loadgen

#: Full size when REPRO_FULL=1, CI-friendly size otherwise.
QUICK = os.environ.get("REPRO_FULL", "0") != "1"

N = 512 if QUICK else 2048
SEED = 21
MIN_SPEEDUP = 1.05
#: Quick runs are short enough for one scheduler hiccup to decide the
#: verdict, so each mode runs twice and the faster run counts; full-size
#: runs last minutes and amortise the noise, so once is enough.
ROUNDS = 2 if QUICK else 1

BASE = dict(
    workload="planted",
    sessions=N,
    alpha=0.5,
    D=2,
    seed=SEED,
    mode="closed",
    max_phases=1,
    d_max=2,
    probes_per_request=32,
)
WINDOW = 256
#: Sharded-topology sweep: worker counts the loadgen is re-run with.
WORKER_SWEEP = (1, 2, 4, 8)


def _best(config: LoadgenConfig) -> LoadgenReport:
    """Best-of-``ROUNDS`` run of one mode (min wall time wins)."""
    return min((run_loadgen(config) for _ in range(ROUNDS)), key=lambda r: r.wall_s)


def _sweep_sharded(micro: LoadgenReport, size: str) -> dict[str, dict]:
    """Worker-count sweep records, equivalence-checked against *micro*.

    ``workers=1`` reuses the micro run — it *is* that topology — so the
    sweep's ``speedup_vs_w1`` column is anchored to the same record the
    A/B reports.
    """
    host_cpus = os.cpu_count() or 1
    base_probes_s = micro.probes_total / micro.wall_s
    entries: dict[str, dict] = {}
    for workers in WORKER_SWEEP:
        if workers == 1:
            report = micro
        else:
            report = _best(
                LoadgenConfig(window=WINDOW, micro_batch=True, workers=workers, **BASE)
            )
            assert report.outputs_sha == micro.outputs_sha, (
                f"workers={workers} changed the served bits"
            )
            assert report.probes_total == micro.probes_total
        probes_s = report.probes_total / report.wall_s
        entries[f"serve_sharded_w{workers}"] = {
            "size": size,
            "workers": workers,
            "host_cpus": host_cpus,
            "wall_s": round(report.wall_s, 3),
            "probes_per_s": round(probes_s, 1),
            "speedup_vs_w1": round(probes_s / base_probes_s, 2),
        }
    return entries


def main(argv: list[str] | None = None) -> None:
    """Time the A/B and write the machine-readable ``BENCH_serve.json``.

    ``--out`` exists so CI can write the fresh record to a scratch path
    and diff it against the committed baseline with
    ``benchmarks/check_regression.py`` instead of overwriting it.
    """
    default_out = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--out", type=Path, default=default_out, metavar="PATH")
    args = parser.parse_args(argv)

    sequential = _best(LoadgenConfig(window=1, micro_batch=False, **BASE))
    micro = _best(LoadgenConfig(window=WINDOW, micro_batch=True, **BASE))
    assert micro.outputs_sha == sequential.outputs_sha
    assert micro.probes_total == sequential.probes_total

    probes_s_seq = sequential.probes_total / sequential.wall_s
    probes_s_micro = micro.probes_total / micro.wall_s
    size = f"planted n=m={N}, {micro.probes_total} probes"
    sharded = _sweep_sharded(micro, size)
    out = {
        "bench": "serving runtime: micro-batched probe routing A/B + worker sweep",
        "harness": (
            f"benchmarks/bench_serve.py, closed-loop loadgen, best of {ROUNDS}, "
            f"seed {SEED}, 1 anytime phase, grant={BASE['probes_per_request']}, "
            f"workers swept over {list(WORKER_SWEEP)}"
        ),
        "seed_semantics": "sequential serving: window=1, scalar oracle probes",
        # Honesty metadata (like `workers`/`host_cpus` on the sharded
        # records): the repro.metrics.kernels backend behind every probe.
        # check_regression.py gates only like-for-like backends.
        "kernel_backend": _kernel_backend(),
        "kernels": {
            "serve_sequential": {
                "size": size,
                "wall_s": round(sequential.wall_s, 3),
                "probes_per_s": round(probes_s_seq, 1),
            },
            "serve_micro_batch": {
                "size": size,
                "wall_s": round(micro.wall_s, 3),
                "probes_per_s": round(probes_s_micro, 1),
                "speedup_vs_seed": round(probes_s_micro / probes_s_seq, 2),
            },
            **sharded,
        },
    }
    args.out.write_text(json.dumps(out, indent=2) + "\n", encoding="utf-8")
    print(
        f"{probes_s_seq:,.0f} -> {probes_s_micro:,.0f} probes/s "
        f"({probes_s_micro / probes_s_seq:.2f}x micro-batch)"
    )
    host_cpus = os.cpu_count() or 1
    for name, record in sharded.items():
        note = (
            ""
            if record["workers"] <= host_cpus
            else f"  [workers > {host_cpus} host cpu(s): coordination overhead only]"
        )
        print(
            f"{name}: {record['probes_per_s']:,.0f} probes/s "
            f"({record['speedup_vs_w1']:.2f}x vs w1){note}"
        )
    print(f"wrote {args.out}")


def test_serve_micro_vs_sequential(benchmark, text_archiver):
    def run_sequential():
        return run_loadgen(LoadgenConfig(window=1, micro_batch=False, **BASE))

    def run_micro():
        return run_loadgen(LoadgenConfig(window=WINDOW, micro_batch=True, **BASE))

    sequential = min((run_sequential() for _ in range(ROUNDS)), key=lambda r: r.wall_s)
    timed = benchmark.pedantic(run_micro, iterations=1, rounds=1)
    extra = (run_micro() for _ in range(ROUNDS - 1))
    micro = min((timed, *extra), key=lambda r: r.wall_s)

    assert micro.outputs_sha == sequential.outputs_sha, (
        "micro-batched routing changed the served bits"
    )
    assert micro.probes_total == sequential.probes_total

    probes_s_micro = micro.probes_total / micro.wall_s
    probes_s_seq = sequential.probes_total / sequential.wall_s
    speedup = probes_s_micro / probes_s_seq
    lines = [
        f"serving A/B: closed-loop loadgen, planted n=m={N}, alpha=0.5, D=2, "
        f"seed {SEED}",
        f"1 anytime phase, grant={BASE['probes_per_request']} probes/request",
        "",
        "--- sequential (window=1, scalar oracle probes) ---",
        sequential.render(),
        "",
        f"--- micro-batched (window={WINDOW}, probe_many wavefronts) ---",
        micro.render(),
        "",
        f"throughput: {probes_s_seq:,.0f} -> {probes_s_micro:,.0f} probes/s "
        f"over the same {micro.probes_total}-probe workload "
        f"(wall {sequential.wall_s:.1f}s -> {micro.wall_s:.1f}s)",
        f"speedup: {speedup:.2f}x (floor {MIN_SPEEDUP:.2f}x)",
        "",
        "req/s is not comparable across modes (window=1 requests stall at",
        f"waits sooner: {sequential.requests} requests vs {micro.requests}),",
        f"served bits identical: sha256 {micro.outputs_sha[:16]}",
    ]
    report = "\n".join(lines)
    path = text_archiver("serve_ab", report)
    print("\n" + report + f"\n[archived: {path}]")

    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["probes_per_s"] = round(probes_s_micro, 1)
    assert speedup >= MIN_SPEEDUP, report


if __name__ == "__main__":
    main()
