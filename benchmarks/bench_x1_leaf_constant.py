"""Benchmark X1 — Extension ablation: the Fig. 2 leaf constant trades cost for vote reliability.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_x1_leaf_constant(benchmark):
    """Extension ablation: the Fig. 2 leaf constant trades cost for vote reliability."""
    run_and_report(benchmark, "X1")
