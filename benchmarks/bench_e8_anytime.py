"""Benchmark E8 — Theorem 1.1 / §6: anytime stretch-vs-rounds curve on nested communities.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_e8_anytime(benchmark):
    """Theorem 1.1 / §6: anytime stretch-vs-rounds curve on nested communities."""
    run_and_report(benchmark, "E8")
