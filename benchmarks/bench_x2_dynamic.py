"""Benchmark X2 — Extension: tracking drifting preferences at polylog cost per epoch.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_x2_dynamic(benchmark):
    """Extension: tracking drifting preferences at polylog cost per epoch."""
    run_and_report(benchmark, "X2")
