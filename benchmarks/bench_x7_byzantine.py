"""Benchmark X7 — Extension: Byzantine resilience of the billboard voting protocol.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_x7_byzantine(benchmark):
    """Extension: Byzantine resilience of the billboard voting protocol."""
    run_and_report(benchmark, "X7")
