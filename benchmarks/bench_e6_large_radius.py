"""Benchmark E6 — Theorem 5.4: Large Radius — constant stretch at sublinear probing cost.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_e6_large_radius(benchmark):
    """Theorem 5.4: Large Radius — constant stretch at sublinear probing cost."""
    run_and_report(benchmark, "E6")
