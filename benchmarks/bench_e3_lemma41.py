"""Benchmark E3 — Lemma 4.1: random-partition success probability vs s/d^{3/2}.

See ``src/repro/experiments/`` for the experiment implementation and
DESIGN.md §2 for the experiment index.
"""

from conftest import run_and_report


def test_e3_lemma41(benchmark):
    """Lemma 4.1: random-partition success probability vs s/d^{3/2}."""
    run_and_report(benchmark, "E3")
